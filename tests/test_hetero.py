"""Tests for the heterogeneous (CPU+GPU) extension — §VII future work."""

import numpy as np
import pytest

from repro.algorithms import cholesky_program
from repro.core.simbackend import HeterogeneousSimulationBackend
from repro.core.task import DataRegistry, TaskSpec
from repro.kernels.distributions import ConstantModel
from repro.kernels.timing import KernelModelSet
from repro.machine import (
    GpuDevice,
    HeterogeneousBackend,
    HeterogeneousMachine,
    MachineBackend,
    calibrate_heterogeneous,
    collect_samples_by_kind,
    get_machine,
)
from repro.schedulers import StarPUScheduler
from repro.schedulers.base import TaskNode
from repro.trace.compare import compare_traces


def _hmachine(n_cpu=6, n_gpu=2):
    return HeterogeneousMachine(
        cpu=get_machine("smp_8"),
        gpus=tuple(GpuDevice(f"gpu{i}") for i in range(n_gpu)),
        n_cpu_workers=n_cpu,
    )


def _node(kernel="DGEMM", flops=1e8, size=512 * 1024, reg=None, n_refs=2):
    reg = reg or DataRegistry()
    accesses = tuple(reg.alloc(f"t{i}", size, key=("t", i)).rw() for i in range(n_refs))
    spec = TaskSpec(kernel, accesses, flops=flops)
    spec.task_id = 0
    return TaskNode(spec)


class TestHeterogeneousMachine:
    def test_worker_kinds(self):
        hm = _hmachine()
        assert hm.n_workers == 8
        assert hm.worker_kinds == ("cpu",) * 6 + ("gpu",) * 2

    def test_device_of(self):
        hm = _hmachine()
        assert hm.device_of(0) is None
        assert hm.device_of(6) is hm.gpus[0]
        assert hm.device_of(7) is hm.gpus[1]

    def test_no_cpu_workers_rejected(self):
        with pytest.raises(ValueError):
            HeterogeneousMachine(
                cpu=get_machine("uniform_4"),
                gpus=tuple(GpuDevice() for _ in range(4)),
            )

    def test_default_cpu_workers_reserve_gpu_drivers(self):
        hm = HeterogeneousMachine(cpu=get_machine("smp_8"), gpus=(GpuDevice(),))
        assert hm.n_cpu_workers == 7


class TestHeterogeneousBackend:
    def test_worker_count_must_match(self):
        backend = HeterogeneousBackend(_hmachine())
        with pytest.raises(ValueError, match="workers"):
            backend.reset(np.random.default_rng(0), 5)

    def test_gpu_faster_on_gemm(self):
        hm = _hmachine()
        backend = HeterogeneousBackend(hm)
        backend.reset(np.random.default_rng(0), hm.n_workers)
        reg = DataRegistry()
        cpu_time = backend.duration(_node(reg=reg), 0, 0.0, 1)
        # Second call on the GPU: pays transfer but computes ~20x faster.
        backend2 = HeterogeneousBackend(hm)
        backend2.reset(np.random.default_rng(0), hm.n_workers)
        gpu_time = backend2.duration(_node(reg=reg), 6, 0.0, 1)
        assert gpu_time < cpu_time

    def test_gpu_panel_kernels_barely_faster(self):
        hm = _hmachine()
        dev = hm.gpus[0]
        assert dev.kernel_speedup("DGEMM") > 5 * dev.kernel_speedup("DGEQRT")

    def test_transfer_paid_once_while_resident(self):
        hm = _hmachine()
        backend = HeterogeneousBackend(hm)
        backend.reset(np.random.default_rng(0), hm.n_workers)
        reg = DataRegistry()
        node = _node(reg=reg)
        first = backend.duration(node, 6, 0.0, 1)
        second = backend.duration(node, 6, 1.0, 1)
        # Data now resident on gpu0: no transfer on the second execution.
        assert second < first

    def test_cpu_pays_device_to_host_after_gpu_write(self):
        hm = HeterogeneousMachine(
            cpu=get_machine("uniform_4"), gpus=(GpuDevice(),), n_cpu_workers=3
        )
        backend = HeterogeneousBackend(hm)
        backend.reset(np.random.default_rng(0), hm.n_workers)
        reg = DataRegistry()
        node = _node(reg=reg)
        clean_cpu = backend.duration(node, 0, 0.0, 1)  # host-owned data
        backend.duration(node, 3, 1.0, 1)  # GPU writes the refs
        dirty_cpu = backend.duration(node, 0, 2.0, 1)  # must transfer back
        transfer = sum(r.size for r in node.spec.writes) / hm.gpus[0].transfer_bandwidth
        assert dirty_cpu >= clean_cpu  # paid at least some transfer
        assert dirty_cpu - clean_cpu == pytest.approx(transfer, rel=0.5)

    def test_other_gpu_copy_invalidated_on_write(self):
        hm = _hmachine()
        backend = HeterogeneousBackend(hm)
        backend.reset(np.random.default_rng(0), hm.n_workers)
        reg = DataRegistry()
        node = _node(reg=reg)
        backend.duration(node, 6, 0.0, 1)  # resident+owned on gpu0
        backend.duration(node, 7, 1.0, 1)  # gpu1 writes -> gpu0 copy stale
        warm_again = backend.duration(node, 6, 2.0, 1)
        fresh = HeterogeneousBackend(hm)
        fresh.reset(np.random.default_rng(0), hm.n_workers)
        cold = fresh.duration(_node(reg=DataRegistry()), 6, 0.0, 1)
        # gpu0 must re-transfer (its copy was invalidated): cost ~ cold run.
        assert warm_again >= 0.5 * cold


class TestHeterogeneousScheduling:
    def test_worker_kinds_length_checked(self):
        with pytest.raises(ValueError, match="worker_kinds"):
            StarPUScheduler(4, policy="dmda", worker_kinds=("cpu",))

    def test_dmda_routes_gemm_to_gpu(self):
        hm = _hmachine()
        sched = StarPUScheduler(hm.n_workers, policy="dmda", worker_kinds=hm.worker_kinds)
        trace = sched.run(cholesky_program(12, 256), HeterogeneousBackend(hm), seed=1)
        trace.validate()
        gemm_on_gpu = sum(
            1 for e in trace.events if e.kernel == "DGEMM" and e.worker >= 6
        )
        gemm_total = trace.kernel_counts()["DGEMM"]
        assert gemm_on_gpu > 0.5 * gemm_total

    def test_hybrid_beats_cpu_only(self):
        hm = _hmachine()
        hybrid = StarPUScheduler(
            hm.n_workers, policy="dmda", worker_kinds=hm.worker_kinds
        ).run(cholesky_program(12, 256), HeterogeneousBackend(hm), seed=1)
        cpu_only = StarPUScheduler(6, policy="dmda").run(
            cholesky_program(12, 256), MachineBackend(hm.cpu), seed=1
        )
        assert hybrid.makespan < cpu_only.makespan

    def test_all_policies_complete_on_hetero(self):
        hm = _hmachine()
        for policy in ("eager", "prio", "ws", "dmda"):
            sched = StarPUScheduler(
                hm.n_workers, policy=policy, worker_kinds=hm.worker_kinds
            )
            trace = sched.run(cholesky_program(8, 256), HeterogeneousBackend(hm), seed=0)
            trace.validate()
            assert len(trace) == len(cholesky_program(8, 256))


class TestHeterogeneousSimulation:
    def test_samples_split_by_kind(self):
        hm = _hmachine()
        sched = StarPUScheduler(hm.n_workers, policy="dmda", worker_kinds=hm.worker_kinds)
        trace = sched.run(cholesky_program(10, 256), HeterogeneousBackend(hm), seed=0)
        by_kind = collect_samples_by_kind(trace, hm.worker_kinds)
        assert set(by_kind) == {"cpu", "gpu"}
        # GPU DGEMMs are much faster than CPU DGEMMs.
        assert np.mean(by_kind["gpu"]["DGEMM"]) < 0.3 * np.mean(by_kind["cpu"]["DGEMM"])

    def test_backend_validates_kind_coverage(self):
        models = {"cpu": KernelModelSet(models={"K": ConstantModel(1e-3)})}
        with pytest.raises(ValueError, match="gpu"):
            HeterogeneousSimulationBackend(models, ("cpu", "gpu"))

    def test_backend_validates_worker_count(self):
        models = {"cpu": KernelModelSet(models={"K": ConstantModel(1e-3)})}
        backend = HeterogeneousSimulationBackend(models, ("cpu", "cpu"))
        with pytest.raises(ValueError, match="workers"):
            backend.reset(np.random.default_rng(0), 3)

    def test_hetero_validation_pipeline(self):
        """Calibrate per kind, simulate, and match the real hybrid run."""
        hm = _hmachine()

        def sched():
            return StarPUScheduler(
                hm.n_workers, policy="dmda", worker_kinds=hm.worker_kinds
            )

        models, _ = calibrate_heterogeneous(
            cholesky_program(12, 256),
            sched(),
            HeterogeneousBackend(hm),
            hm.worker_kinds,
            seed=0,
        )
        real = sched().run(cholesky_program(14, 256), HeterogeneousBackend(hm), seed=1)
        sim = sched().run(
            cholesky_program(14, 256),
            HeterogeneousSimulationBackend(models, hm.worker_kinds),
            seed=2,
        )
        cmp_ = compare_traces(real, sim)
        assert cmp_.abs_error_percent < 15.0
        assert len(sim) == len(real)
