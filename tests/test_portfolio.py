"""Tests for scheduler portfolio selection (repro.portfolio).

The differential core: on a validation grid the simulate-based oracle must
pick the measured-argmin candidate on >= 80% of points with < 5% mean
prediction error (the paper's own accuracy band, §VI-B, repurposed as a
decision procedure).  Around it: feature-extraction sanity on analytically
checkable DAGs, candidate/spec conventions, the least-squares regressor,
and CLI smoke for the three new verbs.
"""

import json

import numpy as np
import pytest

from repro.algorithms import cholesky_program
from repro.core.task import Program
from repro.experiments.portfolio import portfolio_experiment
from repro.kernels.distributions import ConstantModel
from repro.kernels.timing import KernelModelSet
from repro.portfolio import (
    Candidate,
    MakespanRegressor,
    candidate_scheduler_spec,
    default_candidates,
    extract_features,
    fit_regressor,
    recommend,
)

pytestmark = pytest.mark.calib


def _chain_program(n=5):
    """n tasks in a pure WAW chain: depth n, width 1."""
    program = Program("chain")
    ref = program.registry.alloc("R", 64, key=("R", 0))
    for _ in range(n):
        program.add_task("DGEMM", [ref.write()], flops=1.0)
    return program


def _fork_program(width=4):
    """One root, then `width` independent readers: depth 2, width `width`."""
    program = Program("fork")
    ref = program.registry.alloc("R", 64, key=("R", 0))
    program.add_task("DPOTRF", [ref.write()], flops=1.0)
    outs = [program.registry.alloc("O", 64, key=("O", i)) for i in range(width)]
    for out in outs:
        program.add_task("DGEMM", [ref.read(), out.write()], flops=1.0)
    return program


# -- feature extraction ------------------------------------------------------
class TestFeatures:
    def test_chain_features(self):
        f = extract_features(_chain_program(5))
        assert f.n_tasks == 5
        assert f.n_edges == 4
        assert f.depth == 5
        assert f.max_level_width == 1
        assert f.critical_path_s == pytest.approx(5.0)  # unit costs
        assert f.total_work_s == pytest.approx(5.0)
        assert f.avg_parallelism == pytest.approx(1.0)

    def test_fork_features_and_ideal_makespan(self):
        f = extract_features(_fork_program(4), n_workers=2)
        assert f.n_tasks == 5
        assert f.depth == 2
        assert f.max_level_width == 4
        assert f.critical_path_s == pytest.approx(2.0)
        # total work 5 over 2 workers dominates the critical path.
        assert f.ideal_makespan_s == pytest.approx(2.5)
        assert f.kernel_counts == {"DPOTRF": 1, "DGEMM": 4}

    def test_model_weighted_durations(self):
        models = KernelModelSet(
            models={"DPOTRF": ConstantModel(3e-3), "DGEMM": ConstantModel(1e-3)},
            family="constant",
        )
        f = extract_features(_fork_program(4), models=models)
        assert f.critical_path_s == pytest.approx(4e-3)
        assert f.total_work_s == pytest.approx(7e-3)

    def test_vector_is_stable_and_numeric(self):
        f = extract_features(_fork_program(3))
        vec = f.to_vector()
        assert len(vec) == 9 + len(f.kernel_counts)
        assert all(isinstance(v, float) for v in vec)

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError, match="empty program"):
            extract_features(Program("empty"))


# -- candidates and scheduler specs ------------------------------------------
class TestCandidates:
    def test_default_portfolio_covers_all_schedulers(self):
        labels = [c.label for c in default_candidates()]
        assert labels == [
            "quark", "starpu/eager", "starpu/prio", "starpu/ws",
            "starpu/dmda", "ompss",
        ]

    def test_label_round_trip(self):
        for candidate in default_candidates():
            assert Candidate.from_label(candidate.label) == candidate

    def test_validation(self):
        with pytest.raises(KeyError):
            Candidate("cilk")
        with pytest.raises(ValueError, match="takes no policy"):
            Candidate("quark", "prio")

    def test_scheduler_spec_core_conventions(self):
        # QUARK's master doubles as a worker; StarPU/OmpSs keep a dedicated
        # submission thread (the experiment convention).
        assert candidate_scheduler_spec(Candidate("quark"), 8).n_workers == 8
        spec = candidate_scheduler_spec(Candidate("starpu", "ws"), 8)
        assert spec.n_workers == 7
        assert spec.policy == "ws"
        assert candidate_scheduler_spec(Candidate("ompss"), 8).n_workers == 7
        with pytest.raises(ValueError, match="at least 2 cores"):
            candidate_scheduler_spec(Candidate("quark"), 1)


# -- the oracle: recommendations vs. exhaustive sweeps -----------------------
class TestPortfolioValidation:
    def test_quick_grid_meets_accuracy_targets(self):
        report = portfolio_experiment(
            algorithms=("cholesky", "qr"), nts=(4, 6), machine="uniform_4"
        )
        assert report.top1_accuracy >= 0.8
        assert report.mean_prediction_error < 0.05
        assert report.mean_regret < 0.02
        # Every point carries the full candidate set, both ways.
        for point in report.points:
            assert set(point.measured_s) == set(point.predicted_s)
            assert len(point.measured_s) == len(default_candidates())

    def test_report_document_shape(self):
        report = portfolio_experiment(
            algorithms=("cholesky",), nts=(4,), machine="uniform_4"
        )
        doc = report.to_document()
        assert doc["schema"] == "repro.portfolio_validation/v1"
        assert doc["points"][0]["algorithm"] == "cholesky"
        assert json.dumps(doc)  # JSON-serializable end to end
        assert "top-1 accuracy" in report.report()

    @pytest.mark.slow
    def test_noisy_machine_grid(self):
        # Paper-grade machine: jitter, spikes, warm-up all active.  The
        # candidates land within ~1% of each other here, so the single-seed
        # argmin is itself a lottery — the gate is regret (how much slower
        # the pick really is), not top-1, and the measured truth is
        # averaged over 3 real seeds.
        report = portfolio_experiment(
            algorithms=("cholesky", "qr"),
            nts=(6, 8),
            machine="magny_cours_48",
            seed=1,
            n_real=3,
        )
        assert report.mean_regret < 0.01
        assert report.mean_prediction_error < 0.05


class TestRecommend:
    def test_recommendation_is_ranked_and_documented(self, quiet_machine):
        program = cholesky_program(5, 100)
        models = KernelModelSet(
            models={
                k: ConstantModel(1e-3)
                for k in ("DPOTRF", "DTRSM", "DSYRK", "DGEMM")
            },
            family="constant",
        )
        rec = recommend(program, quiet_machine, models, n_cores=4, seed=0)
        spans = [p.makespan_s for p in rec.predictions]
        assert spans == sorted(spans)
        assert rec.best.makespan_s == spans[0]
        doc = rec.to_document()
        assert doc["schema"] == "repro.portfolio/v1"
        assert doc["best"]["label"] == rec.best.candidate.label
        assert len(doc["predictions"]) == len(default_candidates())


# -- the fitted regressor ----------------------------------------------------
class TestRegressor:
    def test_fit_predict_rank(self):
        rng = np.random.default_rng(0)
        rows = []
        for _ in range(30):
            vec = list(rng.random(3))
            # quark is always 10% slower than starpu/prio on the same vector.
            base = 1.0 + 2.0 * vec[0] + 0.5 * vec[2]
            rows.append(("starpu/prio", vec, base))
            rows.append(("quark", vec, base * 1.1))
        reg = MakespanRegressor().fit(rows)
        assert reg.labels == ("quark", "starpu/prio")
        vec = [0.5, 0.5, 0.5]
        assert reg.predict("quark", vec) == pytest.approx(
            reg.predict("starpu/prio", vec) * 1.1, rel=1e-6
        )
        ranked = reg.rank(vec)
        assert ranked[0].candidate.label == "starpu/prio"

    def test_errors(self):
        with pytest.raises(ValueError, match="no training rows"):
            MakespanRegressor().fit([])
        reg = MakespanRegressor().fit([("quark", [1.0], 2.0)])
        with pytest.raises(KeyError, match="no fitted model"):
            reg.predict("ompss", [1.0])
        with pytest.raises(ValueError, match="length"):
            reg.predict("quark", [1.0, 2.0])

    def test_fit_from_sweep_history(self):
        from repro.runner import ProgramSpec, RunSpec, SchedulerSpec
        from repro.runner import sweep as runner_sweep

        specs = [
            RunSpec(
                program=ProgramSpec("cholesky", nt, 100),
                scheduler=SchedulerSpec(name, 4),
                machine="uniform_4",
                seed=nt,
                mode="real",
            )
            for nt in (4, 5, 6)
            for name in ("quark", "ompss")
        ]
        outcome = runner_sweep(specs, jobs=1, cache=None)
        reg = fit_regressor(outcome.metrics_document())
        assert set(reg.labels) == {"quark", "ompss"}
        features = extract_features(cholesky_program(5, 100), n_workers=4)
        ranked = reg.rank(features.to_vector())
        assert {p.candidate.label for p in ranked} == {"quark", "ompss"}
        assert all(p.makespan_s > 0 for p in ranked)


# -- CLI smoke ---------------------------------------------------------------
class TestCli:
    def _probe_dir(self, tmp_path):
        from repro.cli import main

        probe_dir = tmp_path / "probes"
        rc = main([
            "sweep", "--algorithm", "cholesky", "--nts", "4", "--nb", "100",
            "--schedulers", "quark", "starpu", "--seeds", "0",
            "--mode", "real", "--machine", "uniform_4", "--workers", "4",
            "--no-cache", "--probe-dir", str(probe_dir),
        ])
        assert rc == 0
        return probe_dir

    def test_calibrate_recommend_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        probe_dir = self._probe_dir(tmp_path)
        cal = tmp_path / "cal.json"
        assert main(["calibrate", "--probe-dir", str(probe_dir),
                     "--out", str(cal)]) == 0
        out = capsys.readouterr().out
        assert "digest" in out
        document = json.loads(cal.read_text())
        assert document["schema"] == "repro.calib/v1"

        rec_out = tmp_path / "rec.json"
        assert main([
            "recommend", "--algorithm", "cholesky", "--nt", "5", "--nb", "100",
            "--machine", "uniform_4", "--calibration", str(cal),
            "--out", str(rec_out),
        ]) == 0
        rec = json.loads(rec_out.read_text())
        assert rec["schema"] == "repro.portfolio/v1"
        assert rec["best"]["label"] in [c.label for c in default_candidates()]

        # The calibrated document plugs into a simulated sweep.
        assert main([
            "sweep", "--algorithm", "cholesky", "--nts", "4", "--nb", "100",
            "--schedulers", "quark", "--seeds", "0", "--mode", "simulated",
            "--machine", "uniform_4", "--workers", "4", "--no-cache",
            "--calibration", str(cal),
        ]) == 0

    def test_calibrate_bad_probe_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["calibrate", "--probe-dir", str(tmp_path / "nope")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_portfolio_command_gates(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "portfolio.json"
        rc = main([
            "portfolio", "--algorithms", "cholesky", "--nts", "4", "6",
            "--out", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.portfolio_validation/v1"
        assert doc["top1_accuracy"] >= 0.8
        # An unreachable accuracy bar must flip the exit status.
        rc = main([
            "portfolio", "--algorithms", "cholesky", "--nts", "4",
            "--min-accuracy", "1.1",
        ])
        assert rc == 1
        assert "below target" in capsys.readouterr().err
