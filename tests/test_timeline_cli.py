"""End-to-end tests for the ``repro timeline`` CLI and the probe/metrics
flags added to the other subcommands."""

import json

from repro.cli import build_parser, main
from repro.obs import load_trace_event


def _timeline(tmp_path, *extra):
    argv = [
        "timeline",
        "--algorithm", "cholesky",
        "--nt", "4",
        "--nb", "64",
        "--workers", "4",
        "--machine", "uniform_4",
        "--out-dir", str(tmp_path),
        *extra,
    ]
    return main(argv)


class TestTimelineParser:
    def test_defaults(self):
        args = build_parser().parse_args(["timeline"])
        assert args.mode == "real"
        assert args.runtime == "engine"
        assert args.out_dir == "timeline-artifacts"
        assert args.prefix == "timeline"


class TestTimelineCommand:
    def test_real_engine_run_writes_validated_artifacts(self, tmp_path, capsys):
        assert _timeline(tmp_path) == 0
        out = capsys.readouterr().out
        assert "wait attribution" in out
        assert "ui.perfetto.dev" in out

        perfetto = tmp_path / "timeline.perfetto.json"
        doc = load_trace_event(perfetto)
        n_tasks = doc["otherData"]["n_tasks"]
        assert n_tasks == sum(
            1 for e in doc["traceEvents"] if e.get("cat") == "task"
        ) > 0

        metrics = json.loads((tmp_path / "timeline.metrics.json").read_text())
        series = json.loads((tmp_path / "timeline.series.json").read_text())
        assert series["peaks"]["ready_depth"] == metrics["peak_ready_depth"]

        attribution = json.loads((tmp_path / "timeline.attribution.json").read_text())
        assert attribution["n_tasks"] == n_tasks

    def test_simulated_mode(self, tmp_path, capsys):
        code = _timeline(
            tmp_path, "--mode", "simulated", "--cal-nt", "3", "--prefix", "sim"
        )
        assert code == 0
        load_trace_event(tmp_path / "sim.perfetto.json")

    def test_threaded_runtime(self, tmp_path, capsys):
        code = _timeline(
            tmp_path,
            "--mode", "simulated",
            "--runtime", "threaded",
            "--workers", "2",
            "--cal-nt", "3",
            "--prefix", "thr",
        )
        assert code == 0
        series = json.loads((tmp_path / "thr.series.json").read_text())
        assert "teq_depth" in series["series"]

    def test_threaded_requires_simulated_mode(self, tmp_path, capsys):
        assert _timeline(tmp_path, "--runtime", "threaded") == 2
        assert "requires --mode simulated" in capsys.readouterr().err


class TestMetricsOutFlags:
    def test_run_writes_metrics_document(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        code = main([
            "run", "--nt", "4", "--nb", "64", "--workers", "4",
            "--machine", "uniform_4", "--metrics-out", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.run_metrics/v1"
        assert doc["tasks_executed"] > 0

    def test_simulate_writes_real_and_sim_metrics(self, tmp_path, capsys):
        out = tmp_path / "v.json"
        code = main([
            "simulate", "--nt", "4", "--nb", "64", "--workers", "4",
            "--machine", "uniform_4", "--cal-nt", "3",
            "--metrics-out", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.validate_metrics/v1"
        assert doc["real"]["tasks_executed"] == doc["simulated"]["tasks_executed"] > 0


class TestProbeDirFlags:
    def test_sweep_probe_dir_writes_artifacts(self, tmp_path, capsys):
        probes = tmp_path / "probes"
        code = main([
            "sweep", "--algorithm", "cholesky", "--nts", "4", "--nb", "64",
            "--workers", "4", "--machine", "uniform_4",
            "--schedulers", "quark", "--mode", "real",
            "--cache-dir", str(tmp_path / "cache"),
            "--jobs", "1",
            "--probe-dir", str(probes),
        ])
        assert code == 0
        traces = sorted(probes.glob("*.perfetto.json"))
        assert traces
        for t in traces:
            load_trace_event(t)

    def test_stress_probe_dir_writes_artifacts(self, tmp_path, capsys):
        probes = tmp_path / "probes"
        code = main([
            "stress", "--programs", "1", "--tasks", "6",
            "--guards", "quiesce", "--workers", "2",
            "--probe-dir", str(probes),
        ])
        assert code == 0
        assert sorted(probes.glob("*.perfetto.json"))
