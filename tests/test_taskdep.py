"""Unit and property tests for hazard analysis (RaW/WaR/WaW)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.task import Program
from repro.schedulers.taskdep import HazardKind, HazardTracker


def _program_of(access_lists):
    """Build a program from e.g. [("w", "x"), ("r", "x"), ...] specs."""
    prog = Program("p")
    refs = {}
    for i, accesses in enumerate(access_lists):
        acc = []
        for mode, name in accesses:
            ref = refs.setdefault(name, prog.registry.alloc(name, 64, key=(name,)))
            acc.append({"r": ref.read(), "w": ref.write(), "rw": ref.rw()}[mode])
        prog.add_task(f"K{i}", acc)
    return prog


def _track(prog):
    tracker = HazardTracker()
    edges = []
    for t in prog:
        edges.extend(tracker.add_task(t))
    return tracker, edges


class TestHazardKinds:
    def test_raw(self):
        prog = _program_of([[("w", "x")], [("r", "x")]])
        _, edges = _track(prog)
        assert len(edges) == 1
        assert edges[0].kind is HazardKind.RAW
        assert (edges[0].src, edges[0].dst) == (0, 1)

    def test_waw(self):
        prog = _program_of([[("w", "x")], [("w", "x")]])
        _, edges = _track(prog)
        assert [e.kind for e in edges] == [HazardKind.WAW]

    def test_war(self):
        prog = _program_of([[("w", "x")], [("r", "x")], [("w", "x")]])
        _, edges = _track(prog)
        kinds = {(e.src, e.dst): e.kind for e in edges}
        assert kinds[(1, 2)] is HazardKind.WAR
        assert kinds[(0, 1)] is HazardKind.RAW
        # The second writer also carries WaW on the first writer.
        assert kinds[(0, 2)] is HazardKind.WAW

    def test_concurrent_readers_independent(self):
        prog = _program_of([[("w", "x")], [("r", "x")], [("r", "x")], [("r", "x")]])
        tracker, _ = _track(prog)
        for reader in (1, 2, 3):
            assert tracker.predecessors(reader) == {0}

    def test_writer_waits_for_all_readers(self):
        prog = _program_of([[("w", "x")], [("r", "x")], [("r", "x")], [("w", "x")]])
        tracker, _ = _track(prog)
        assert tracker.predecessors(3) == {0, 1, 2}

    def test_rw_behaves_as_read_then_write(self):
        prog = _program_of([[("w", "x")], [("rw", "x")], [("r", "x")]])
        tracker, edges = _track(prog)
        kinds = {(e.src, e.dst, e.kind) for e in edges}
        assert (0, 1, HazardKind.RAW) in kinds
        assert (0, 1, HazardKind.WAW) in kinds
        assert (1, 2, HazardKind.RAW) in kinds
        assert tracker.predecessors(2) == {1}

    def test_no_self_edges(self):
        prog = _program_of([[("rw", "x"), ("r", "x")]])
        _, edges = _track(prog)
        assert edges == []

    def test_independent_refs_no_edges(self):
        prog = _program_of([[("w", "x")], [("w", "y")], [("rw", "z")]])
        _, edges = _track(prog)
        assert edges == []

    def test_write_clears_reader_set(self):
        prog = _program_of(
            [[("w", "x")], [("r", "x")], [("w", "x")], [("w", "x")]]
        )
        tracker, _ = _track(prog)
        # Task 3 depends only on writer 2 (reader 1 ordered before writer 2).
        assert tracker.predecessors(3) == {2}


class TestTrackerInterface:
    def test_out_of_order_insert_rejected(self):
        prog = _program_of([[("w", "x")], [("r", "x")]])
        tracker = HazardTracker()
        with pytest.raises(ValueError, match="serial order"):
            tracker.add_task(prog[1])

    def test_unassigned_id_rejected(self):
        from repro.core.task import TaskSpec

        prog = Program("p")
        x = prog.registry.alloc("x", 64)
        spec = TaskSpec("K", (x.read(),))
        with pytest.raises(ValueError, match="no id"):
            HazardTracker().add_task(spec)

    def test_edge_multiplicity(self):
        # dtsmqr-style: two hazards (RaW on V, RaW on T) from the same parent.
        prog = Program("p")
        v = prog.registry.alloc("v", 64, key=("v",))
        t = prog.registry.alloc("t", 64, key=("t",))
        prog.add_task("TSQRT", [v.write(), t.write()])
        prog.add_task("TSMQR", [v.read(), t.read()])
        tracker, _ = _track(prog)
        assert tracker.edge_multiplicity(0, 1) == 2
        assert tracker.predecessors(1) == {0}

    def test_n_tasks(self):
        prog = _program_of([[("w", "x")], [("r", "x")]])
        tracker, _ = _track(prog)
        assert tracker.n_tasks == 2


class TestKnownDags:
    def test_cholesky_nt2_structure(self):
        from repro.algorithms import cholesky_program

        prog = cholesky_program(2, 8)
        # Stream: POTRF(0,0), TRSM(1,0), SYRK(1,1), POTRF(1,1)
        tracker, _ = _track(prog)
        assert tracker.predecessors(0) == set()
        assert tracker.predecessors(1) == {0}
        assert tracker.predecessors(2) == {1}
        assert tracker.predecessors(3) == {2}

    def test_qr_nt2_structure(self):
        from repro.algorithms import qr_program

        prog = qr_program(2, 8)
        # Stream: GEQRT(0), ORMQR(1), TSQRT(2), TSMQR(3), GEQRT(4)
        tracker, _ = _track(prog)
        assert tracker.predecessors(1) == {0}
        assert tracker.predecessors(2) == {0, 1}  # WaR on A00 from ORMQR read
        assert tracker.predecessors(3) == {1, 2}
        assert tracker.predecessors(4) == {3}


class _SerialInterpreter:
    """Reference semantics: value of each ref after serial execution.

    Each task computes a deterministic hash of the values it reads (plus its
    id) and stores it into everything it writes.  Two executions are
    semantically equivalent iff the final ref values agree.
    """

    @staticmethod
    def run(order, tasks):
        state = {}
        for tid in order:
            task = tasks[tid]
            inputs = tuple(sorted(state.get(r.addr, 0) for r in task.reads))
            value = hash((tid, inputs))
            for ref in task.writes:
                state[ref.addr] = value
        return state


@st.composite
def random_programs(draw):
    n_refs = draw(st.integers(min_value=1, max_value=4))
    n_tasks = draw(st.integers(min_value=1, max_value=12))
    spec = []
    for _ in range(n_tasks):
        n_acc = draw(st.integers(min_value=1, max_value=3))
        accesses = []
        used = set()
        for _ in range(n_acc):
            name = f"r{draw(st.integers(min_value=0, max_value=n_refs - 1))}"
            if name in used:
                continue
            used.add(name)
            mode = draw(st.sampled_from(["r", "w", "rw"]))
            accesses.append((mode, name))
        spec.append(accesses)
    return _program_of(spec)


class TestSerialEquivalenceProperty:
    @given(prog=random_programs(), seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_any_dependence_respecting_order_is_serially_equivalent(self, prog, seed):
        """The central correctness property of superscalar scheduling: every
        topological order of the hazard DAG computes the same result as the
        serial order."""
        tracker, _ = _track(prog)
        n = len(prog)
        preds = {i: tracker.predecessors(i) for i in range(n)}

        # Build a random topological order of the hazard DAG.
        rng = np.random.default_rng(seed)
        remaining = dict(preds)
        order = []
        done = set()
        while remaining:
            ready = sorted(t for t, p in remaining.items() if p <= done)
            pick = int(rng.choice(ready))
            order.append(pick)
            done.add(pick)
            del remaining[pick]

        serial = _SerialInterpreter.run(range(n), prog.tasks)
        reordered = _SerialInterpreter.run(order, prog.tasks)
        assert serial == reordered
