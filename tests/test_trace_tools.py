"""Tests for trace statistics and the ASCII Gantt renderer."""

import pytest

from repro.trace import Trace, ascii_gantt, trace_statistics


def _trace(events, n_workers=2):
    tr = Trace(n_workers)
    for i, (w, start, end, kernel, *rest) in enumerate(events):
        width = rest[0] if rest else 1
        tr.record(w, i, kernel, start, end, width=width)
    return tr


class TestTraceStatistics:
    def test_empty(self):
        stats = trace_statistics(Trace(4))
        assert stats.n_tasks == 0
        assert stats.makespan == 0.0

    def test_kernel_breakdown(self):
        tr = _trace(
            [(0, 0.0, 1.0, "A"), (1, 0.0, 3.0, "B"), (0, 1.0, 2.0, "A")]
        )
        stats = trace_statistics(tr)
        by_kernel = {k.kernel: k for k in stats.kernels}
        assert by_kernel["A"].count == 2
        assert by_kernel["A"].total_time == pytest.approx(2.0)
        assert by_kernel["B"].share == pytest.approx(0.6)
        # sorted by total time descending
        assert stats.kernels[0].kernel == "B"

    def test_shares_sum_to_one(self):
        tr = _trace([(0, 0.0, 1.0, "A"), (1, 0.0, 2.0, "B"), (0, 2.0, 4.0, "C")])
        stats = trace_statistics(tr)
        assert sum(k.share for k in stats.kernels) == pytest.approx(1.0)

    def test_worker_busy_fractions(self):
        tr = _trace([(0, 0.0, 4.0, "A"), (1, 0.0, 1.0, "B")])
        stats = trace_statistics(tr)
        lo, mean, hi = stats.worker_busy_fraction
        assert lo == pytest.approx(0.25)
        assert hi == pytest.approx(1.0)
        assert mean == pytest.approx(0.625)

    def test_phase_breakdown_sums_to_makespan(self):
        # Peak concurrency 3 during [4, 6]; threshold is 1.5, so only that
        # window is "steady".
        tr = _trace(
            [(0, 0.0, 10.0, "A"), (1, 4.0, 6.0, "B"), (2, 4.0, 6.0, "C")],
            n_workers=3,
        )
        stats = trace_statistics(tr, n_bins=100)
        p = stats.phases
        assert p is not None
        assert p.ramp_up + p.steady + p.tail == pytest.approx(stats.makespan)
        assert p.steady == pytest.approx(2.0, abs=0.2)

    def test_gap_time(self):
        tr = _trace([(0, 0.0, 2.0, "A"), (1, 0.0, 1.0, "B")])
        stats = trace_statistics(tr)
        assert stats.total_gap_time == pytest.approx(1.0)

    def test_wide_events_counted_in_utilisation(self):
        tr = _trace([(0, 0.0, 1.0, "A", 2)])
        stats = trace_statistics(tr)
        assert stats.utilization == pytest.approx(1.0)

    def test_report_contains_kernels(self):
        tr = _trace([(0, 0.0, 1.0, "DGEMM")])
        text = trace_statistics(tr).report()
        assert "DGEMM" in text and "utilisation" in text


class TestAsciiGantt:
    def test_empty_trace(self):
        assert ascii_gantt(Trace(2)) == "(empty trace)"

    def test_one_row_per_worker(self):
        tr = _trace([(0, 0.0, 1.0, "A")], n_workers=3)
        lines = ascii_gantt(tr, width=20).splitlines()
        assert len(lines) == 4  # 3 rows + legend
        assert lines[0].startswith("w0")

    def test_busy_cells_marked(self):
        tr = _trace([(0, 0.0, 1.0, "KERNEL")], n_workers=2)
        lines = ascii_gantt(tr, width=20, legend=False).splitlines()
        row0 = lines[0].split("|")[1]
        row1 = lines[1].split("|")[1]
        assert set(row0) != {"."}
        assert set(row1) == {"."}

    def test_half_busy_row(self):
        tr = _trace([(0, 0.0, 1.0, "A"), (1, 0.0, 2.0, "B")])
        lines = ascii_gantt(tr, width=40, legend=False).splitlines()
        row0 = lines[0].split("|")[1]
        assert row0[:20].count(".") == 0
        assert row0[20:].count(".") == 20

    def test_wide_event_spans_rows(self):
        tr = _trace([(0, 0.0, 1.0, "A", 3)], n_workers=4)
        lines = ascii_gantt(tr, width=10, legend=False).splitlines()
        for row in lines[:3]:
            assert "." not in row.split("|")[1]
        assert set(lines[3].split("|")[1]) == {"."}

    def test_distinct_initials(self):
        tr = _trace(
            [(0, 0.0, 1.0, "DGEMM"), (1, 0.0, 1.0, "DGEQRT")]
        )
        out = ascii_gantt(tr, width=20)
        # Legend maps both kernels to different characters.
        legend = out.splitlines()[-1]
        assert "DGEMM" in legend and "DGEQRT" in legend
        chars = [part.split("=")[0].strip() for part in legend.split(":", 1)[1].split(",")[:2]]
        assert chars[0] != chars[1]

    def test_minimum_width_enforced(self):
        with pytest.raises(ValueError):
            ascii_gantt(_trace([(0, 0.0, 1.0, "A")]), width=5)

    def test_every_kernel_in_legend(self):
        tr = _trace([(0, 0.0, 1.0, "AAA"), (1, 0.0, 1.0, "BBB")])
        legend = ascii_gantt(tr, width=20).splitlines()[-1]
        assert "AAA" in legend and "BBB" in legend


class TestSvgRendering:
    def test_empty_trace_renders_valid_document(self):
        import xml.etree.ElementTree as ET

        from repro.trace.svg import render_svg

        svg = render_svg(Trace(3), title="empty")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        # Lane labels still present even with no events.
        texts = [t.text for t in root.iter() if t.tag.endswith("text")]
        assert "core 2" in texts

    def test_wide_task_spans_multiple_lanes(self):
        import xml.etree.ElementTree as ET

        from repro.trace.svg import render_svg

        tr = _trace([(0, 0.0, 1.0, "PANEL", 2), (0, 1.0, 2.0, "A")], n_workers=2)
        root = ET.fromstring(render_svg(tr))
        rects = [r for r in root.iter() if r.tag.endswith("rect")]
        heights = sorted(float(r.get("height")) for r in rects if r.get("height"))
        # The width-2 rectangle is taller than a one-lane rectangle.
        assert heights[-1] > heights[-2] >= 14

    def test_time_span_fixes_the_scale(self):
        from repro.trace.svg import render_svg

        tr = _trace([(0, 0.0, 1.0, "A")], n_workers=1)
        natural = render_svg(tr)
        stretched = render_svg(tr, time_span=2.0)
        # Same events, half the pixels per second under the longer span.
        def rect_width(svg):
            for line in svg.splitlines():
                if "<rect" in line and "fill=\"white\"" not in line:
                    return float(line.split('width="')[1].split('"')[0])
            raise AssertionError("no task rect")

        assert rect_width(stretched) == pytest.approx(rect_width(natural) / 2, rel=1e-3)

    def test_write_svg_creates_parent_dirs(self, tmp_path):
        from repro.trace.svg import write_svg

        out = write_svg(_trace([(0, 0.0, 1.0, "A")]), tmp_path / "deep" / "t.svg")
        assert out.exists()
        assert out.read_text().startswith("<svg")

    def test_comparison_stacks_on_shared_scale(self, tmp_path):
        import xml.etree.ElementTree as ET

        from repro.trace.svg import write_comparison_svg

        fast = _trace([(0, 0.0, 1.0, "A")], n_workers=1)
        slow = _trace([(0, 0.0, 4.0, "A")], n_workers=1)
        out = write_comparison_svg(fast, slow, tmp_path / "cmp.svg")
        root = ET.fromstring(out.read_text())
        texts = [t.text for t in root.iter() if t.tag.endswith("text")]
        assert "real execution" in texts and "simulated execution" in texts
        # Both axes run to the longer makespan: the final tick label of each
        # block reads the shared 4s extent.
        assert texts.count("4s") == 2
