"""Tests for trace statistics and the ASCII Gantt renderer."""

import pytest

from repro.trace import Trace, ascii_gantt, trace_statistics


def _trace(events, n_workers=2):
    tr = Trace(n_workers)
    for i, (w, start, end, kernel, *rest) in enumerate(events):
        width = rest[0] if rest else 1
        tr.record(w, i, kernel, start, end, width=width)
    return tr


class TestTraceStatistics:
    def test_empty(self):
        stats = trace_statistics(Trace(4))
        assert stats.n_tasks == 0
        assert stats.makespan == 0.0

    def test_kernel_breakdown(self):
        tr = _trace(
            [(0, 0.0, 1.0, "A"), (1, 0.0, 3.0, "B"), (0, 1.0, 2.0, "A")]
        )
        stats = trace_statistics(tr)
        by_kernel = {k.kernel: k for k in stats.kernels}
        assert by_kernel["A"].count == 2
        assert by_kernel["A"].total_time == pytest.approx(2.0)
        assert by_kernel["B"].share == pytest.approx(0.6)
        # sorted by total time descending
        assert stats.kernels[0].kernel == "B"

    def test_shares_sum_to_one(self):
        tr = _trace([(0, 0.0, 1.0, "A"), (1, 0.0, 2.0, "B"), (0, 2.0, 4.0, "C")])
        stats = trace_statistics(tr)
        assert sum(k.share for k in stats.kernels) == pytest.approx(1.0)

    def test_worker_busy_fractions(self):
        tr = _trace([(0, 0.0, 4.0, "A"), (1, 0.0, 1.0, "B")])
        stats = trace_statistics(tr)
        lo, mean, hi = stats.worker_busy_fraction
        assert lo == pytest.approx(0.25)
        assert hi == pytest.approx(1.0)
        assert mean == pytest.approx(0.625)

    def test_phase_breakdown_sums_to_makespan(self):
        # Peak concurrency 3 during [4, 6]; threshold is 1.5, so only that
        # window is "steady".
        tr = _trace(
            [(0, 0.0, 10.0, "A"), (1, 4.0, 6.0, "B"), (2, 4.0, 6.0, "C")],
            n_workers=3,
        )
        stats = trace_statistics(tr, n_bins=100)
        p = stats.phases
        assert p is not None
        assert p.ramp_up + p.steady + p.tail == pytest.approx(stats.makespan)
        assert p.steady == pytest.approx(2.0, abs=0.2)

    def test_gap_time(self):
        tr = _trace([(0, 0.0, 2.0, "A"), (1, 0.0, 1.0, "B")])
        stats = trace_statistics(tr)
        assert stats.total_gap_time == pytest.approx(1.0)

    def test_wide_events_counted_in_utilisation(self):
        tr = _trace([(0, 0.0, 1.0, "A", 2)])
        stats = trace_statistics(tr)
        assert stats.utilization == pytest.approx(1.0)

    def test_report_contains_kernels(self):
        tr = _trace([(0, 0.0, 1.0, "DGEMM")])
        text = trace_statistics(tr).report()
        assert "DGEMM" in text and "utilisation" in text


class TestAsciiGantt:
    def test_empty_trace(self):
        assert ascii_gantt(Trace(2)) == "(empty trace)"

    def test_one_row_per_worker(self):
        tr = _trace([(0, 0.0, 1.0, "A")], n_workers=3)
        lines = ascii_gantt(tr, width=20).splitlines()
        assert len(lines) == 4  # 3 rows + legend
        assert lines[0].startswith("w0")

    def test_busy_cells_marked(self):
        tr = _trace([(0, 0.0, 1.0, "KERNEL")], n_workers=2)
        lines = ascii_gantt(tr, width=20, legend=False).splitlines()
        row0 = lines[0].split("|")[1]
        row1 = lines[1].split("|")[1]
        assert set(row0) != {"."}
        assert set(row1) == {"."}

    def test_half_busy_row(self):
        tr = _trace([(0, 0.0, 1.0, "A"), (1, 0.0, 2.0, "B")])
        lines = ascii_gantt(tr, width=40, legend=False).splitlines()
        row0 = lines[0].split("|")[1]
        assert row0[:20].count(".") == 0
        assert row0[20:].count(".") == 20

    def test_wide_event_spans_rows(self):
        tr = _trace([(0, 0.0, 1.0, "A", 3)], n_workers=4)
        lines = ascii_gantt(tr, width=10, legend=False).splitlines()
        for row in lines[:3]:
            assert "." not in row.split("|")[1]
        assert set(lines[3].split("|")[1]) == {"."}

    def test_distinct_initials(self):
        tr = _trace(
            [(0, 0.0, 1.0, "DGEMM"), (1, 0.0, 1.0, "DGEQRT")]
        )
        out = ascii_gantt(tr, width=20)
        # Legend maps both kernels to different characters.
        legend = out.splitlines()[-1]
        assert "DGEMM" in legend and "DGEQRT" in legend
        chars = [part.split("=")[0].strip() for part in legend.split(":", 1)[1].split(",")[:2]]
        assert chars[0] != chars[1]

    def test_minimum_width_enforced(self):
        with pytest.raises(ValueError):
            ascii_gantt(_trace([(0, 0.0, 1.0, "A")]), width=5)

    def test_every_kernel_in_legend(self):
        tr = _trace([(0, 0.0, 1.0, "AAA"), (1, 0.0, 1.0, "BBB")])
        legend = ascii_gantt(tr, width=20).splitlines()[-1]
        assert "AAA" in legend and "BBB" in legend
