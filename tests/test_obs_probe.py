"""Tests for the probe bus: hook wiring, no-perturbation, determinism.

The contract under test is the one the observability layer is built on:
probes observe scheduler internals without changing them (golden digests
stay byte-identical with a probe attached), the engine's recorded stream is
a pure function of ``(program, scheduler, backend, seed)``, and the default
``probe=None`` path stays the uninstrumented hot path.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.algorithms import cholesky_program
from repro.bench.suites import synthetic_models
from repro.core.metrics import RunMetrics
from repro.core.simulator import run_real, simulate
from repro.core.teq import TaskExecutionQueue
from repro.core.threaded import ThreadedRuntime
from repro.kernels.distributions import ConstantModel
from repro.kernels.timing import KernelModelSet
from repro.obs.probe import (
    DISPATCHED,
    FINISHED,
    INSERTED,
    READY,
    SWEEP,
    NullProbe,
    Probe,
    ProbeEvent,
    RecordingProbe,
    active_probe,
)
from repro.schedulers import make_scheduler
from repro.schedulers.taskdep import HazardTracker
from repro.trace.textio import dumps_trace

DATA = Path(__file__).parent / "data"


def _run(scheduler="quark", *, seed=3, probe=None, metrics=None):
    return run_real(
        cholesky_program(5, 100),
        make_scheduler(scheduler, 4),
        "uniform_4",
        seed=seed,
        probe=probe,
        metrics=metrics,
    )


class TestActiveProbe:
    def test_none_stays_none(self):
        assert active_probe(None) is None

    def test_null_probe_is_normalised_away(self):
        assert active_probe(NullProbe()) is None

    def test_recording_probe_passes_through(self):
        p = RecordingProbe()
        assert active_probe(p) is p

    def test_recording_probe_satisfies_protocol(self):
        assert isinstance(RecordingProbe(), Probe)
        assert isinstance(NullProbe(), Probe)


class TestEngineHooks:
    def test_lifecycle_hooks_fire_once_per_task(self):
        probe = RecordingProbe()
        trace = _run(probe=probe)
        n = len(trace)
        for kind in (INSERTED, READY, DISPATCHED, FINISHED):
            assert len(probe.by_kind(kind)) == n, kind

    def test_dispatch_sweeps_account_for_every_task(self):
        probe = RecordingProbe()
        trace = _run(probe=probe)
        placed = sum(int(e.value) for e in probe.by_kind(SWEEP))
        assert placed == len(trace)

    def test_dependence_sets_recorded(self):
        probe = RecordingProbe()
        _run(probe=probe)
        # Task 0 (the first POTRF) has no predecessors; some task must.
        assert probe.deps[0] == ()
        assert any(preds for preds in probe.deps.values())

    def test_lifecycle_ordering_per_task(self):
        probe = RecordingProbe()
        _run(probe=probe)
        instants = {}
        for e in probe.events:
            if e.kind in (INSERTED, READY, DISPATCHED, FINISHED):
                instants.setdefault(e.task_id, {})[e.kind] = e.t
        for tid, by_kind in instants.items():
            assert by_kind[INSERTED] <= by_kind[READY] <= by_kind[DISPATCHED], tid
            assert by_kind[DISPATCHED] <= by_kind[FINISHED], tid

    def test_window_stall_episodes_balanced(self):
        probe = RecordingProbe()
        run_real(
            cholesky_program(6, 100),
            make_scheduler("quark", 4, window=4),
            "uniform_4",
            seed=3,
            probe=probe,
        )
        begins = probe.by_kind("window_stall_begin")
        ends = probe.by_kind("window_stall_end")
        assert begins, "window=4 on nt=6 Cholesky must throttle"
        assert len(begins) == len(ends)


class TestNoPerturbation:
    @pytest.mark.parametrize("scheduler", ["quark", "starpu", "ompss"])
    def test_real_trace_identical_with_probe(self, scheduler):
        plain = dumps_trace(_run(scheduler))
        observed = dumps_trace(_run(scheduler, probe=RecordingProbe()))
        assert plain == observed

    def test_simulated_trace_identical_with_probe(self):
        program = cholesky_program(6, 100)
        models = synthetic_models(program)
        traces = [
            simulate(
                program,
                make_scheduler("starpu", 8),
                models,
                seed=11,
                probe=probe,
            )
            for probe in (None, RecordingProbe(), NullProbe())
        ]
        assert dumps_trace(traces[0]) == dumps_trace(traces[1]) == dumps_trace(traces[2])

    def test_golden_digests_hold_with_probe_attached(self):
        """The committed pre-optimization digests still match observed runs."""
        golden = json.loads((DATA / "preopt_trace_digests.json").read_text())
        program = cholesky_program(8, 200)
        models = synthetic_models(program)
        for scheduler in ("quark", "starpu", "ompss"):
            sim = simulate(
                program,
                make_scheduler(scheduler, 16),
                models,
                seed=1234,
                warmup_penalty=1e-3,
                probe=RecordingProbe(),
            )
            got = hashlib.sha256(dumps_trace(sim).encode()).hexdigest()
            assert got == golden["digests"][f"sim/cholesky/{scheduler}/nt8"], scheduler


class TestDeterminism:
    def test_engine_stream_digest_reproducible(self):
        digests = set()
        for _ in range(2):
            probe = RecordingProbe()
            _run(probe=probe)
            digests.add(probe.digest())
        assert len(digests) == 1

    def test_engine_stream_digest_depends_on_seed(self):
        # The quiet uniform_4 model is seed-independent by design, so the
        # seed sensitivity check needs the noisy machine.
        digests = []
        for seed in (3, 4):
            probe = RecordingProbe()
            run_real(
                cholesky_program(5, 100),
                make_scheduler("quark", 4),
                "magny_cours_48",
                seed=seed,
                probe=probe,
            )
            digests.append(probe.digest())
        assert digests[0] != digests[1]

    def test_to_dict_carries_schema_and_events(self):
        probe = RecordingProbe()
        _run(probe=probe)
        doc = probe.to_dict()
        assert doc["schema"] == "repro.probe_stream/v1"
        assert doc["n_events"] == len(doc["events"]) > 0


class TestMetricsConsistency:
    def test_ready_events_match_peak_ready_depth_accounting(self):
        probe = RecordingProbe()
        metrics = RunMetrics()
        _run(probe=probe, metrics=metrics)
        assert metrics.peak_ready_depth >= 1
        # Replay the probe's ready/dispatch transitions; the running count's
        # peak is exactly what the engine recorded.
        depth = peak = 0
        for e in probe.events:
            if e.kind == READY:
                depth += 1
                peak = max(peak, depth)
            elif e.kind == DISPATCHED:
                depth -= 1
        assert peak == metrics.peak_ready_depth


class TestTeqHooks:
    def test_insert_and_pop_record_exact_depths(self):
        probe = RecordingProbe()
        teq = TaskExecutionQueue(probe=probe)
        teq.insert(0, 3.0)
        teq.insert(1, 1.0)
        teq.insert(2, 2.0)
        assert [int(e.value) for e in probe.by_kind("teq_insert")] == [1, 2, 3]
        assert teq.pop_front(1) == 1.0
        pops = probe.by_kind("teq_pop")
        assert [(e.task_id, e.t, int(e.value)) for e in pops] == [(1, 1.0, 2)]

    def test_now_fn_timestamps_inserts(self):
        probe = RecordingProbe()
        teq = TaskExecutionQueue(probe=probe, now_fn=lambda: 0.25)
        teq.insert(7, 9.0)
        (ev,) = probe.by_kind("teq_insert")
        assert ev.t == 0.25 and ev.task_id == 7

    def test_disabled_probe_is_free(self):
        teq = TaskExecutionQueue(probe=NullProbe())
        assert teq._probe is None


class TestThreadedHooks:
    def _models(self):
        return KernelModelSet(
            models={k: ConstantModel(1e-3) for k in ("DPOTRF", "DTRSM", "DSYRK", "DGEMM")},
            family="constant",
        )

    def test_threaded_stream_covers_lifecycle_and_teq(self):
        probe = RecordingProbe()
        metrics = RunMetrics()
        rt = ThreadedRuntime(2, mode="simulate", guard="quiesce")
        trace = rt.run(
            cholesky_program(4, 100),
            models=self._models(),
            seed=1,
            metrics=metrics,
            probe=probe,
        )
        n = len(trace)
        for kind in (INSERTED, READY, DISPATCHED, FINISHED, "teq_insert", "teq_pop"):
            assert len(probe.by_kind(kind)) == n, kind
        assert metrics.peak_ready_depth >= 1

    def test_threaded_trace_unperturbed_by_probe(self):
        def makespan(probe):
            rt = ThreadedRuntime(2, mode="simulate", guard="quiesce")
            tr = rt.run(
                cholesky_program(4, 100), models=self._models(), seed=1, probe=probe
            )
            return tr.makespan

        # Constant durations: virtual makespan is schedule-determined and
        # must not move when observation is attached.
        assert makespan(None) == makespan(RecordingProbe())

    def test_hazard_tracker_reports_deps_to_probe(self):
        probe = RecordingProbe()
        tracker = HazardTracker(record_edges=False, probe=probe)
        for spec in cholesky_program(3, 64):
            tracker.add_task(spec)
        assert set(probe.deps) == set(range(tracker.n_tasks))
        assert probe.deps[0] == ()

    def test_probe_event_defaults(self):
        e = ProbeEvent(1.0, "ready", 5)
        assert (e.worker, e.value, e.width) == (-1, 0.0, 1)
