"""Tests for the synthetic machine substrate."""

import numpy as np
import pytest

from repro.core.task import DataRegistry, TaskSpec
from repro.machine import (
    CacheModel,
    LRUCache,
    MachineBackend,
    contention_factor,
    get_machine,
)
from repro.machine.noise import JitterModel, WarmupModel
from repro.machine.topology import MACHINE_PRESETS, Machine
from repro.schedulers.base import TaskNode


def _task(kernel="DGEMM", refs=2, flops=1e6, size=1024, reg=None):
    reg = reg or DataRegistry()
    accesses = tuple(
        reg.alloc(f"t{i}", size, key=(kernel, i)).rw() for i in range(refs)
    )
    spec = TaskSpec(kernel, accesses, flops=flops)
    spec.task_id = 0
    return spec


class TestMachine:
    def test_presets_exist(self):
        assert {"magny_cours_48", "smp_8", "uniform_4"} <= set(MACHINE_PRESETS)

    def test_magny_cours_matches_paper_testbed(self):
        m = get_machine("magny_cours_48")
        assert m.n_cores == 48
        assert m.n_sockets == 4
        assert m.peak_gflops == pytest.approx(480.0)

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            get_machine("cray")

    def test_socket_of(self):
        m = get_machine("magny_cours_48")
        assert m.socket_of(0) == 0
        assert m.socket_of(11) == 0
        assert m.socket_of(12) == 1
        assert m.socket_of(47) == 3
        with pytest.raises(ValueError):
            m.socket_of(48)

    def test_base_duration_from_efficiency(self):
        m = get_machine("uniform_4")  # 10 GF/s per core, DGEMM at 90 %
        d = m.base_duration("DGEMM", 10e9 * 0.9)  # flops for exactly 1 s warm
        assert d == pytest.approx(1.0 + m.launch_latency, rel=1e-6)

    def test_base_duration_zero_flops_is_latency(self):
        m = get_machine("uniform_4")
        assert m.base_duration("DGEMM", 0.0) == m.launch_latency

    def test_dgemm_faster_than_dtsmqr_per_flop(self):
        # The paper's §IV-B2 observation: DTSMQR reaches a lower fraction of
        # peak than vendor-tuned DGEMM.
        m = get_machine("magny_cours_48")
        assert m.base_duration("DGEMM", 1e9) < m.base_duration("DTSMQR", 1e9)

    def test_quiet_strips_noise(self):
        q = get_machine("magny_cours_48").quiet()
        assert q.jitter_sigma == 0.0
        assert q.spike_prob == 0.0
        assert q.warmup_penalty == 0.0

    def test_invalid_machine_rejected(self):
        with pytest.raises(ValueError):
            Machine("bad", 0, 4, 10.0, 1024, 1024)


class TestLRUCache:
    def setup_method(self):
        self._reg = DataRegistry()

    def _ref(self, name, size=100):
        return self._reg.alloc(name, size, key=(name,))

    def test_touch_then_contains(self):
        cache = LRUCache(1000)
        ref = self._ref("a")
        cache.touch(ref)
        assert cache.contains(ref)

    def test_eviction_is_lru(self):
        cache = LRUCache(250)
        a, b, c = (self._ref(n) for n in "abc")
        cache.touch(a)
        cache.touch(b)
        cache.touch(a)  # refresh a; b is now LRU
        cache.touch(c)  # evicts b
        assert cache.contains(a) and cache.contains(c)
        assert not cache.contains(b)

    def test_oversized_ref_clamped(self):
        cache = LRUCache(64)
        big = self._ref("big", size=1000)
        cache.touch(big)
        assert cache.contains(big)

    def test_used_bytes(self):
        cache = LRUCache(1000)
        cache.touch(self._ref("a", 100))
        assert cache.used_bytes == 100

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestCacheModel:
    def test_cold_start_zero_residency(self):
        m = get_machine("smp_8")
        cm = CacheModel(m)
        assert cm.resident_fraction(_task(), 0) == 0.0

    def test_warm_after_execution(self):
        m = get_machine("smp_8")
        cm = CacheModel(m)
        task = _task()
        cm.record_execution(task, 0)
        assert cm.resident_fraction(task, 0) == 1.0

    def test_socket_sharing_partial_credit(self):
        m = get_machine("smp_8")  # cores 0-3 socket 0, 4-7 socket 1
        cm = CacheModel(m)
        task = _task()
        cm.record_execution(task, 0)
        # Same socket, different core: only the shared-level credit.
        assert cm.resident_fraction(task, 1) == pytest.approx(CacheModel.L3_WEIGHT)
        # Other socket: cold.
        assert cm.resident_fraction(task, 4) == 0.0


class TestNoise:
    def test_contention_single_worker_is_one(self):
        m = get_machine("magny_cours_48")
        assert contention_factor(m, "DGEMM", 1) == 1.0

    def test_contention_grows_with_activity(self):
        m = get_machine("magny_cours_48")
        f24 = contention_factor(m, "DTSMQR", 24)
        f48 = contention_factor(m, "DTSMQR", 48)
        assert 1.0 < f24 < f48

    def test_contention_capped_by_alpha(self):
        m = get_machine("magny_cours_48")
        worst = contention_factor(m, "DTSQRT", 48)
        assert worst <= 1.0 + m.contention_alpha

    def test_compute_bound_kernel_less_affected(self):
        m = get_machine("magny_cours_48")
        assert contention_factor(m, "DGEMM", 48) < contention_factor(m, "DTSQRT", 48)

    def test_jitter_disabled_on_quiet_machine(self):
        jm = JitterModel(get_machine("uniform_4"))
        rng = np.random.default_rng(0)
        assert jm.apply(1.0, rng) == 1.0

    def test_jitter_multiplicative_near_one(self):
        jm = JitterModel(get_machine("magny_cours_48"))
        rng = np.random.default_rng(0)
        factors = [jm.apply(1.0, rng) for _ in range(500)]
        assert 0.95 < float(np.median(factors)) < 1.05

    def test_warmup_once_per_worker(self):
        wm = WarmupModel(get_machine("magny_cours_48"))
        assert wm.penalty(3) > 0.0
        assert wm.penalty(3) == 0.0
        assert wm.penalty(4) > 0.0

    def test_warmup_reset(self):
        wm = WarmupModel(get_machine("magny_cours_48"))
        wm.penalty(0)
        wm.reset()
        assert wm.penalty(0) > 0.0


class TestMachineBackend:
    def _node(self, **kw):
        return TaskNode(_task(**kw))

    def test_requires_reset(self):
        backend = MachineBackend("uniform_4")
        with pytest.raises(RuntimeError, match="reset"):
            backend.duration(self._node(), 0, 0.0, 1)

    def test_too_many_workers_rejected(self):
        backend = MachineBackend("uniform_4")
        with pytest.raises(ValueError, match="exceed"):
            backend.reset(np.random.default_rng(0), 5)

    def test_core_offset_counts_against_capacity(self):
        backend = MachineBackend("uniform_4", core_offset=1)
        with pytest.raises(ValueError):
            backend.reset(np.random.default_rng(0), 4)
        backend.reset(np.random.default_rng(0), 3)

    def test_quiet_machine_deterministic_duration(self):
        backend = MachineBackend("uniform_4")
        backend.reset(np.random.default_rng(0), 4)
        node = self._node(flops=1e7)
        d1 = backend.duration(node, 0, 0.0, 1)
        machine = get_machine("uniform_4")
        assert d1 == pytest.approx(machine.base_duration("DGEMM", 1e7))

    def test_warm_cache_speeds_second_execution(self):
        machine = get_machine("magny_cours_48").quiet()
        backend = MachineBackend(machine)
        backend.reset(np.random.default_rng(0), 4)
        node = self._node(flops=1e7, size=100_000)
        cold = backend.duration(node, 0, 0.0, 1)
        warm = backend.duration(node, 0, 1.0, 1)
        assert warm < cold

    def test_contention_slows_tasks(self):
        machine = get_machine("magny_cours_48").quiet()
        b1 = MachineBackend(machine)
        b1.reset(np.random.default_rng(0), 48)
        alone = b1.duration(self._node(flops=1e7), 0, 0.0, 1)
        b2 = MachineBackend(machine)
        b2.reset(np.random.default_rng(0), 48)
        crowded = b2.duration(self._node(flops=1e7), 0, 0.0, 48)
        assert crowded > alone

    def test_warmup_penalty_on_first_task_only(self):
        machine = get_machine("magny_cours_48")
        backend = MachineBackend(machine)
        backend.reset(np.random.default_rng(0), 4)
        node = self._node(flops=1e7)
        first = backend.duration(node, 2, 0.0, 1)
        second = backend.duration(node, 2, 1.0, 1)
        assert first > second + 0.5 * machine.warmup_penalty
