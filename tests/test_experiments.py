"""Smoke tests for the experiment drivers (small parameters).

The full-scale versions live under benchmarks/; these tests verify the
drivers' logic and output structure quickly.
"""

import pytest

from repro.experiments import (
    FIG2_EXPECTED,
    ablation_distribution,
    ablation_quark_window,
    accuracy_summary,
    fig1_dag,
    fig2_stream,
    distribution_figure,
    format_table,
    performance_sweep,
    race_experiment,
    trace_experiment,
)
from repro.experiments.performance import PerfPoint


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [(1, 2.5), (10, 3.25)], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(("a",), [(1, 2)])


class TestFig1:
    def test_structure(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
        result = fig1_dag(nt=4)
        assert result.stats.n_tasks == 30
        assert result.kernel_counts == {
            "DGEQRT": 4,
            "DORMQR": 6,
            "DTSQRT": 6,
            "DTSMQR": 14,
        }
        # Fig. 1's hallmark: children with multiple edges from one parent.
        assert result.multi_edge_pairs > 0
        assert result.dot_path.exists()
        assert "digraph" in result.dot_path.read_text()


class TestFig2:
    def test_exact_stream(self):
        listing, described = fig2_stream()
        assert listing == FIG2_EXPECTED
        assert described.splitlines()[0] == "F0 dgeqrt(A[0,0]^rw, T[0,0]^w)"
        assert len(listing) == 14


class TestFig3Fig4:
    def test_fig3_fits_three_families(self):
        fig = distribution_figure("fig3", nt=8, seed=0)
        assert fig.kernel == "DTSMQR"
        assert set(fig.fits) == {"normal", "gamma", "lognormal"}
        assert fig.best_family in fig.fits
        assert fig.samples.size > 50
        # The paper: the three families fit nearly identically - KS within a
        # few percent of each other.
        ks = [f.ks for f in fig.fits.values()]
        assert max(ks) - min(ks) < 0.1
        assert "DTSMQR" in fig.table()

    def test_fig4_kernel_is_dgemm(self):
        fig = distribution_figure("fig4", nt=8, seed=0)
        assert fig.kernel == "DGEMM"
        assert fig.algorithm == "cholesky"

    def test_density_table_parses(self):
        fig = distribution_figure("fig3", nt=6, seed=0)
        table = fig.density_table(n_bins=10)
        assert "empirical" in table
        assert len(table.splitlines()) == 12  # header + sep + 10 bins

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            distribution_figure("fig9")


class TestFig5:
    def test_race_experiment_outcomes(self):
        outcomes, table = race_experiment(repeats=1)
        by_guard = {(o.guard, o.sleep_time): o for o in outcomes}
        assert by_guard[("quiesce", 200e-6)].correct
        assert by_guard[("sleep", 10e-3)].correct
        assert not by_guard[("sleep", 100e-6)].correct
        assert not by_guard[("none", 0.0)].correct
        assert "quiesce" in table


class TestFig67:
    def test_trace_experiment_small(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
        exp = trace_experiment(nt=8, cal_nt=6, seed=0)
        assert exp.result.error_percent < 25.0  # small problem, loose bound
        assert exp.svg_path.exists()
        svg = exp.svg_path.read_text()
        assert svg.count("<g") == 2
        assert "real" in exp.report()


class TestFig8910:
    def test_sweep_structure(self):
        points = performance_sweep("quark", "cholesky", nts=(4, 8), seed=0)
        assert [p.nt for p in points] == [4, 8]
        assert all(p.gflops_real > 0 and p.gflops_sim > 0 for p in points)
        assert all(p.error_percent >= 0 for p in points)

    def test_performance_increases_with_size(self):
        points = performance_sweep("quark", "cholesky", nts=(4, 16), seed=0)
        assert points[1].gflops_real > points[0].gflops_real

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            performance_sweep("quark", "lu_pp", nts=(4,))

    def test_accuracy_summary(self):
        pts = [
            PerfPoint("qr", 800, 4, 10.0, 11.0, 10.0),
            PerfPoint("qr", 1600, 8, 50.0, 51.0, 2.0),
            PerfPoint("cholesky", 800, 4, 20.0, 20.2, 1.0),
        ]
        summary = accuracy_summary({"quark": {"qr": pts[:2], "cholesky": pts[2:]}})
        assert summary["n_points"] == 3
        assert summary["max_error_percent"] == 10.0
        assert summary["fraction_below_5pct"] == pytest.approx(2 / 3)

    def test_accuracy_summary_empty(self):
        with pytest.raises(ValueError):
            accuracy_summary({})


class TestAblations:
    def test_distribution_ablation_small(self):
        outcomes, table = ablation_distribution(
            families=("constant", "lognormal"), nt=8, cal_nt=6, seed=0
        )
        assert {o.family for o in outcomes} == {"constant", "lognormal"}
        assert "ABL-DIST" in table

    def test_window_ablation_small(self):
        data, table = ablation_quark_window(windows=(4, 512), nt=8, cal_nt=6, seed=0)
        # Throttled window must not be faster than the big one.
        assert data[4]["gflops_real"] <= data[512]["gflops_real"] * 1.01
        assert "ABL-WINDOW" in table
