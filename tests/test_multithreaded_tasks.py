"""Tests for multi-threaded (gang-scheduled) tasks — §VII extension."""

import pytest

from repro.core.simbackend import SimulationBackend
from repro.core.task import Program, TaskSpec
from repro.core.threaded import ThreadedRuntime
from repro.kernels.distributions import ConstantModel
from repro.kernels.timing import KernelModelSet
from repro.machine import MachineBackend, get_machine
from repro.schedulers import OmpSsScheduler, QuarkScheduler
from repro.trace.events import Trace


def _models(kernels=("K", "W"), duration=1e-3):
    return KernelModelSet(models={k: ConstantModel(duration) for k in kernels})


def _wide_program(widths):
    prog = Program("wide", meta={"nb": 1})
    for i, w in enumerate(widths):
        ref = prog.registry.alloc(f"x{i}", 64, key=(f"x{i}",))
        spec = prog.add_task("W" if w > 1 else "K", [ref.write()])
        spec.width = w
    return prog


class TestTaskSpecWidth:
    def test_default_width_one(self):
        prog = _wide_program([1])
        assert prog[0].width == 1

    def test_invalid_width_rejected(self):
        from repro.core.task import DataRegistry

        ref = DataRegistry().alloc("x", 64)
        with pytest.raises(ValueError, match="width"):
            TaskSpec("K", (ref.write(),), width=0)


class TestEngineGangScheduling:
    def test_wide_task_occupies_gang(self):
        # One width-3 task on 4 workers: nothing else can run beside it
        # except on the single leftover worker.
        prog = _wide_program([3, 1, 1])
        sched = OmpSsScheduler(4, insert_cost=0.0, dispatch_overhead=0.0)
        trace = sched.run(prog, SimulationBackend(_models()), seed=0)
        trace.validate()
        wide = next(e for e in trace.events if e.width == 3)
        concurrent = [
            e
            for e in trace.events
            if e is not wide and e.start < wide.end and e.end > wide.start
        ]
        # At most one narrow task can overlap the width-3 task on 4 workers.
        assert len(concurrent) <= 1
        for e in concurrent:
            assert set(e.workers).isdisjoint(set(wide.workers))

    def test_serialises_when_width_equals_workers(self):
        prog = _wide_program([2, 2, 2])
        sched = OmpSsScheduler(2, insert_cost=0.0, dispatch_overhead=0.0)
        trace = sched.run(prog, SimulationBackend(_models()), seed=0)
        assert trace.makespan == pytest.approx(3e-3, rel=1e-9)

    def test_width_beyond_workers_raises(self):
        prog = _wide_program([4])
        sched = OmpSsScheduler(2)
        with pytest.raises(ValueError, match="requires 4 workers"):
            sched.run(prog, SimulationBackend(_models()), seed=0)

    def test_head_of_line_wide_task_not_starved(self):
        # A wide task between narrow ones must still run (head-of-line).
        prog = _wide_program([1, 1, 4, 1, 1])
        sched = OmpSsScheduler(4, insert_cost=0.0, dispatch_overhead=0.0)
        trace = sched.run(prog, SimulationBackend(_models()), seed=0)
        trace.validate()
        assert len(trace) == 5

    def test_machine_backend_speeds_up_wide_tasks(self):
        machine = get_machine("uniform_4")
        prog1 = _wide_program([1])
        prog1[0].flops = 1e8
        prog4 = _wide_program([4])
        prog4[0].flops = 1e8
        sched = OmpSsScheduler(4, insert_cost=0.0, dispatch_overhead=0.0)
        t1 = sched.run(prog1, MachineBackend(machine), seed=0).events[0].duration
        t4 = OmpSsScheduler(4, insert_cost=0.0, dispatch_overhead=0.0).run(
            prog4, MachineBackend(machine), seed=0
        ).events[0].duration
        expected = t1 / (4 * machine.smp_task_efficiency)
        assert t4 == pytest.approx(expected, rel=0.01)

    def test_quark_master_participates_in_gang(self):
        # A width-equal-to-workers task must eventually include worker 0.
        prog = _wide_program([1, 4])
        sched = QuarkScheduler(4, insert_cost=1e-9)
        trace = sched.run(prog, SimulationBackend(_models()), seed=0)
        wide = next(e for e in trace.events if e.width == 4)
        assert wide.worker == 0


class TestPanelWidthGenerators:
    def test_cholesky_panel_width(self):
        from repro.algorithms import cholesky_program

        prog = cholesky_program(4, 16, panel_width=3)
        for t in prog:
            assert t.width == (3 if t.kernel == "DPOTRF" else 1)

    def test_qr_panel_width(self):
        from repro.algorithms import qr_program

        prog = qr_program(4, 16, panel_width=2)
        for t in prog:
            expected = 2 if t.kernel in ("DGEQRT", "DTSQRT") else 1
            assert t.width == expected

    def test_invalid_panel_width(self):
        from repro.algorithms import cholesky_program

        with pytest.raises(ValueError):
            cholesky_program(4, 16, panel_width=0)

    def test_wide_panels_change_makespan(self):
        from repro.algorithms import cholesky_program

        machine = get_machine("magny_cours_48")
        base = QuarkScheduler(48).run(
            cholesky_program(16, 200), MachineBackend(machine), seed=1
        )
        wide = QuarkScheduler(48).run(
            cholesky_program(16, 200, panel_width=4), MachineBackend(machine), seed=1
        )
        assert wide.makespan != base.makespan

    def test_simulator_tracks_panel_width_effect(self):
        """The simulator predicts the benefit/cost of multi-threaded panels."""
        from repro.algorithms import cholesky_program
        from repro.core.simulator import validate
        from repro.machine import calibrate

        machine = get_machine("magny_cours_48")
        for width in (1, 4):
            models, _ = calibrate(
                cholesky_program(12, 200, panel_width=width),
                QuarkScheduler(48),
                machine,
                seed=0,
            )
            result = validate(
                cholesky_program(14, 200, panel_width=width),
                QuarkScheduler(48),
                machine,
                models,
                warmup_penalty=machine.warmup_penalty,
            )
            # Small problem: allow the paper's full ~16 % error envelope.
            assert result.error_percent < 16.0


class TestTraceWidthAccounting:
    def test_busy_time_counts_cores(self):
        tr = Trace(4)
        tr.record(0, 0, "K", 0.0, 1.0, width=3)
        assert tr.busy_time() == pytest.approx(3.0)
        assert tr.busy_time(1) == pytest.approx(1.0)
        assert tr.busy_time(3) == 0.0

    def test_rows_show_event_on_every_worker(self):
        tr = Trace(4)
        tr.record(1, 0, "K", 0.0, 1.0, width=2)
        rows = tr.rows()
        assert len(rows[1]) == 1 and len(rows[2]) == 1
        assert rows[0] == [] and rows[3] == []

    def test_validate_detects_gang_overlap(self):
        tr = Trace(4)
        tr.record(0, 0, "K", 0.0, 1.0, width=3)
        tr.record(2, 1, "K", 0.5, 1.5)  # collides with the gang on worker 2
        with pytest.raises(ValueError, match="overlapping"):
            tr.validate()

    def test_record_range_check_includes_width(self):
        tr = Trace(4)
        with pytest.raises(ValueError):
            tr.record(3, 0, "K", 0.0, 1.0, width=2)

    def test_svg_spans_lanes(self):
        from repro.trace.svg import render_svg

        tr = Trace(4)
        tr.record(0, 0, "DGEMM", 0.0, 1.0, width=4)
        svg = render_svg(tr)
        assert 'height="62"' in svg  # 4 lanes x 14 + 3 gaps x 2

    def test_threaded_runtime_rejects_wide_tasks(self):
        prog = _wide_program([2])
        rt = ThreadedRuntime(4, mode="simulate")
        with pytest.raises(NotImplementedError, match="multi-threaded"):
            rt.run(prog, models=_models())
