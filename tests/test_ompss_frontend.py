"""Tests for the OmpSs pragma-style decorator front-end."""

import pytest

from repro.core.task import AccessMode, DataRegistry
from repro.schedulers.ompss import TaskContext, task


@task(in_=("a",), inout=("b",))
def axpy(a, b, flops=0.0):
    """b += a (stand-in body)."""


@task(out=("c",), kernel="MYGEMM", priority=7)
def produce(c):
    """c = something."""


class TestDecorator:
    def test_submission_records_task(self):
        reg = DataRegistry()
        a = reg.alloc("a", 64, key=("a",))
        b = reg.alloc("b", 64, key=("b",))
        with TaskContext("prog") as ctx:
            spec = axpy(a, b, flops=123.0)
        assert len(ctx.program) == 1
        assert spec.kernel == "AXPY"
        assert spec.flops == 123.0
        modes = {acc.ref.key: acc.mode for acc in spec.accesses}
        assert modes[("a",)] is AccessMode.READ
        assert modes[("b",)] is AccessMode.RW

    def test_kernel_name_and_priority_override(self):
        reg = DataRegistry()
        c = reg.alloc("c", 64, key=("c",))
        with TaskContext("prog") as ctx:
            spec = produce(c)
        assert spec.kernel == "MYGEMM"
        assert spec.priority == 7

    def test_dependences_flow_through_context(self):
        reg = DataRegistry()
        a = reg.alloc("a", 64, key=("a",))
        b = reg.alloc("b", 64, key=("b",))
        with TaskContext("prog") as ctx:
            produce_spec = None

            @task(out=("x",))
            def w(x):
                pass

            @task(in_=("x",), out=("y",))
            def r(x, y):
                pass

            w(a)
            r(a, b)
        from repro.schedulers.taskdep import HazardTracker

        tracker = HazardTracker()
        for t_ in ctx.program:
            tracker.add_task(t_)
        assert tracker.predecessors(1) == {0}

    def test_call_outside_context_rejected(self):
        reg = DataRegistry()
        a = reg.alloc("a", 64, key=("a",))
        b = reg.alloc("b", 64, key=("b",))
        with pytest.raises(RuntimeError, match="no active TaskContext"):
            axpy(a, b)

    def test_non_dataref_argument_rejected(self):
        reg = DataRegistry()
        b = reg.alloc("b", 64, key=("b",))
        with TaskContext("prog"):
            with pytest.raises(TypeError, match="must be a DataRef"):
                axpy("not-a-ref", b)

    def test_context_does_not_nest(self):
        with TaskContext("outer"):
            with pytest.raises(RuntimeError, match="does not nest"):
                with TaskContext("inner"):
                    pass

    def test_unknown_parameter_annotation_rejected(self):
        with pytest.raises(ValueError, match="not in signature"):

            @task(in_=("nope",))
            def f(a):
                pass

    def test_double_annotation_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            task(in_=("a",), out=("a",))

    def test_wrapped_body_preserved(self):
        assert axpy.__wrapped_task__.__doc__.startswith("b += a")

    def test_program_runs_on_scheduler(self):
        from repro.core.simbackend import SimulationBackend
        from repro.kernels.distributions import ConstantModel
        from repro.kernels.timing import KernelModelSet
        from repro.schedulers import OmpSsScheduler

        reg = DataRegistry()
        refs = [reg.alloc(f"v{i}", 64, key=(f"v{i}",)) for i in range(4)]
        with TaskContext("pipeline") as ctx:
            for i in range(3):

                @task(in_=("src",), out=("dst",))
                def step(src, dst):
                    pass

                step(refs[i], refs[i + 1])
        ctx.program.registry = reg  # share the registry used for refs
        models = KernelModelSet(models={"STEP": ConstantModel(1e-3)})
        trace = OmpSsScheduler(2).run(ctx.program, SimulationBackend(models), seed=0)
        trace.validate()
        assert len(trace) == 3
        # A chain: completion order must follow the dependence chain.
        assert trace.completion_order() == [0, 1, 2]
