"""Unit tests for KernelModelSet and warm-up trimming."""

import numpy as np
import pytest

from repro.kernels.distributions import LognormalModel, NormalModel
from repro.kernels.timing import KernelModelSet, trim_warmup_outliers


class TestTrimWarmupOutliers:
    def test_drops_warmup_spikes(self):
        samples = np.array([1.0] * 50 + [10.0, 12.0])
        trimmed = trim_warmup_outliers(samples)
        assert trimmed.max() == 1.0
        assert trimmed.size == 50

    def test_keeps_clean_samples(self):
        samples = np.linspace(0.9, 1.1, 40)
        trimmed = trim_warmup_outliers(samples)
        assert trimmed.size == 40

    def test_refuses_to_decimate_heavy_tail(self):
        # When more than max_fraction would be dropped, keep everything:
        # the tail is a property of the distribution, not warm-up noise.
        samples = np.array([1.0] * 10 + [10.0] * 10)
        trimmed = trim_warmup_outliers(samples, max_fraction=0.25)
        assert trimmed.size == 20

    def test_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            trim_warmup_outliers([1.0, 2.0], factor=1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            trim_warmup_outliers([])


class TestKernelModelSet:
    def _samples(self):
        rng = np.random.default_rng(0)
        return {
            "DGEMM": rng.lognormal(-6.0, 0.1, size=200),
            "DPOTRF": rng.lognormal(-7.0, 0.2, size=50),
        }

    def test_from_samples_fits_every_kernel(self):
        ms = KernelModelSet.from_samples(self._samples(), family="lognormal")
        assert set(ms.kernels()) == {"DGEMM", "DPOTRF"}
        assert len(ms) == 2
        assert "DGEMM" in ms

    def test_best_family_selection(self):
        ms = KernelModelSet.from_samples(self._samples(), family="best")
        assert ms.family == "best"
        for kernel in ms.kernels():
            assert ms.models[kernel].family in ("normal", "gamma", "lognormal")

    def test_duration_draws_near_mean(self):
        ms = KernelModelSet.from_samples(self._samples(), family="normal")
        rng = np.random.default_rng(1)
        draws = [ms.duration("DGEMM", rng) for _ in range(500)]
        assert np.mean(draws) == pytest.approx(ms.mean_duration("DGEMM"), rel=0.05)

    def test_unknown_kernel_raises_with_hint(self):
        ms = KernelModelSet.from_samples(self._samples())
        with pytest.raises(KeyError, match="no timing model for kernel 'DTRSM'"):
            ms.duration("DTRSM", np.random.default_rng(0))

    def test_empty_kernel_samples_rejected(self):
        with pytest.raises(ValueError, match="no samples"):
            KernelModelSet.from_samples({"DGEMM": []})

    def test_warmup_trimming_applied(self):
        samples = {"DGEMM": [1e-3] * 50 + [50e-3]}
        trimmed = KernelModelSet.from_samples(samples, family="normal", trim_warmup=True)
        kept = KernelModelSet.from_samples(samples, family="normal", trim_warmup=False)
        assert trimmed.mean_duration("DGEMM") < kept.mean_duration("DGEMM")
        assert trimmed.mean_duration("DGEMM") == pytest.approx(1e-3, rel=1e-6)

    def test_sample_counts_reflect_trimming(self):
        samples = {"DGEMM": [1e-3] * 50 + [50e-3]}
        ms = KernelModelSet.from_samples(samples, family="normal", trim_warmup=True)
        assert ms.sample_counts["DGEMM"] == 50

    def test_summary_mentions_every_kernel(self):
        ms = KernelModelSet.from_samples(self._samples())
        text = ms.summary()
        assert "DGEMM" in text and "DPOTRF" in text

    def test_scaled_normal(self):
        ms = KernelModelSet(models={"K": NormalModel(mu=1e-3, sigma=1e-4)})
        scaled = ms.scaled(0.5)
        assert scaled.mean_duration("K") == pytest.approx(5e-4)
        assert scaled.models["K"].sigma == pytest.approx(5e-5)

    def test_scaled_lognormal_preserves_cv(self):
        ms = KernelModelSet(models={"K": LognormalModel(mu_log=-6.0, sigma_log=0.3)})
        scaled = ms.scaled(2.0)
        assert scaled.mean_duration("K") == pytest.approx(2 * ms.mean_duration("K"))
        cv0 = ms.models["K"].std / ms.models["K"].mean
        cv1 = scaled.models["K"].std / scaled.models["K"].mean
        assert cv1 == pytest.approx(cv0)

    def test_scaled_rejects_nonpositive(self):
        ms = KernelModelSet(models={"K": NormalModel(mu=1e-3, sigma=1e-4)})
        with pytest.raises(ValueError):
            ms.scaled(0.0)
