"""Tests of the tile-algorithm task streams and their numeric execution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    TiledMatrix,
    cholesky_program,
    execute_cholesky,
    execute_lu,
    execute_qr,
    extract_r,
    lu_program,
    qr_program,
    random_diagdom,
    random_general,
    random_spd,
    run_program_serial,
)
from repro.algorithms.cholesky import expected_task_count as chol_count
from repro.algorithms.lu import expected_task_count as lu_count
from repro.algorithms.qr import expected_task_count as qr_count


class TestCholeskyProgram:
    def test_task_count_formula(self):
        for nt in (1, 2, 3, 5, 8):
            assert len(cholesky_program(nt, 10)) == chol_count(nt)

    def test_kernel_counts(self):
        nt = 5
        counts = cholesky_program(nt, 10).kernel_counts()
        assert counts["DPOTRF"] == nt
        assert counts["DTRSM"] == nt * (nt - 1) // 2
        assert counts["DSYRK"] == nt * (nt - 1) // 2
        assert counts["DGEMM"] == nt * (nt - 1) * (nt - 2) // 6

    def test_first_task_is_potrf(self):
        prog = cholesky_program(3, 10)
        assert prog[0].kernel == "DPOTRF"

    def test_panel_priority_above_update(self):
        prog = cholesky_program(4, 10)
        potrf = next(t for t in prog if t.kernel == "DPOTRF")
        gemm = next(t for t in prog if t.kernel == "DGEMM")
        assert potrf.priority > gemm.priority

    def test_meta(self):
        prog = cholesky_program(4, 25)
        assert prog.meta["n"] == 100
        assert prog.meta["algorithm"] == "cholesky"

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            cholesky_program(0, 10)
        with pytest.raises(ValueError):
            cholesky_program(3, 0)


class TestQrProgram:
    def test_task_count_formula(self):
        for nt in (1, 2, 3, 5, 8):
            assert len(qr_program(nt, 10)) == qr_count(nt)

    def test_nt3_has_14_tasks(self):
        assert len(qr_program(3, 10)) == 14  # the Fig. 2 stream, F0..F13

    def test_nt4_has_30_tasks(self):
        assert len(qr_program(4, 10)) == 30  # the Fig. 1 DAG

    def test_kernel_counts(self):
        nt = 5
        counts = qr_program(nt, 10).kernel_counts()
        assert counts["DGEQRT"] == nt
        assert counts["DORMQR"] == nt * (nt - 1) // 2
        assert counts["DTSQRT"] == nt * (nt - 1) // 2
        assert counts["DTSMQR"] == sum((nt - 1 - k) ** 2 for k in range(nt))

    def test_t_refs_allocated(self):
        prog = qr_program(3, 10)
        assert ("T", 0, 0) in prog.registry
        assert ("T", 2, 1) in prog.registry


class TestLuProgram:
    def test_task_count_formula(self):
        for nt in (1, 2, 3, 5):
            assert len(lu_program(nt, 10)) == lu_count(nt)

    def test_kernel_counts(self):
        nt = 4
        counts = lu_program(nt, 10).kernel_counts()
        assert counts["DGETRF_NOPIV"] == nt
        assert counts["DTRSM_LLN"] == nt * (nt - 1) // 2
        assert counts["DTRSM_RUN"] == nt * (nt - 1) // 2
        assert counts["DGEMM_NN"] == sum((nt - 1 - k) ** 2 for k in range(nt))


class TestNumericExecution:
    def test_cholesky_matches_numpy(self):
        a = random_spd(24, np.random.default_rng(0))
        tm = TiledMatrix(a.copy(), 6)
        execute_cholesky(tm)
        lower = np.tril(tm.lower_tiles_dense())
        assert np.allclose(lower, np.linalg.cholesky(a), atol=1e-8)

    def test_qr_r_factor_correct(self):
        a = random_general(24, np.random.default_rng(1))
        tm = TiledMatrix(a.copy(), 6)
        execute_qr(tm)
        r = extract_r(tm)
        # Orthogonal Q implies R^T R == A^T A.
        assert np.allclose(r.T @ r, a.T @ a, atol=1e-8)
        assert np.allclose(np.tril(r, -1), 0.0)

    def test_lu_reconstructs(self):
        a = random_diagdom(24, np.random.default_rng(2))
        tm = TiledMatrix(a.copy(), 6)
        execute_lu(tm)
        d = tm.to_dense()
        lower = np.tril(d, -1) + np.eye(24)
        assert np.allclose(lower @ np.triu(d), a, atol=1e-8)

    def test_single_tile_qr_matches_dense(self):
        a = random_general(8, np.random.default_rng(3))
        tm = TiledMatrix(a.copy(), 8)
        execute_qr(tm)
        _, r_ref = np.linalg.qr(a)
        assert np.allclose(np.abs(np.diag(extract_r(tm))), np.abs(np.diag(r_ref)))


class TestProgramSerialEquivalence:
    """Executing the generated task stream serially must equal the direct
    loop-nest implementation — i.e. the stream is a faithful elaboration."""

    def test_cholesky(self):
        a = random_spd(20, np.random.default_rng(4))
        direct = TiledMatrix(a.copy(), 5)
        execute_cholesky(direct)
        via_stream = TiledMatrix(a.copy(), 5)
        run_program_serial(cholesky_program(4, 5), via_stream.store)
        assert np.allclose(direct.to_dense(), via_stream.to_dense())

    def test_qr(self):
        a = random_general(20, np.random.default_rng(5))
        direct = TiledMatrix(a.copy(), 5)
        execute_qr(direct)
        via_stream = TiledMatrix(a.copy(), 5)
        run_program_serial(qr_program(4, 5), via_stream.store)
        assert np.allclose(direct.to_dense(), via_stream.to_dense())

    def test_lu(self):
        a = random_diagdom(20, np.random.default_rng(6))
        direct = TiledMatrix(a.copy(), 5)
        execute_lu(direct)
        via_stream = TiledMatrix(a.copy(), 5)
        run_program_serial(lu_program(4, 5), via_stream.store)
        assert np.allclose(direct.to_dense(), via_stream.to_dense())

    def test_missing_nb_meta_rejected(self):
        from repro.core.task import Program

        with pytest.raises(ValueError, match="nb"):
            run_program_serial(Program("p"), TiledMatrix(np.eye(4), 2).store)


class TestPropertyBased:
    @given(
        nt=st.integers(min_value=1, max_value=4),
        nb=st.integers(min_value=2, max_value=6),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=15, deadline=None)
    def test_cholesky_any_size(self, nt, nb, seed):
        n = nt * nb
        a = random_spd(n, np.random.default_rng(seed))
        tm = TiledMatrix(a.copy(), nb)
        execute_cholesky(tm)
        lower = np.tril(tm.lower_tiles_dense())
        assert np.allclose(lower @ lower.T, a, atol=1e-7 * n)

    @given(
        nt=st.integers(min_value=1, max_value=4),
        nb=st.integers(min_value=2, max_value=6),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=15, deadline=None)
    def test_qr_any_size(self, nt, nb, seed):
        n = nt * nb
        a = random_general(n, np.random.default_rng(seed))
        tm = TiledMatrix(a.copy(), nb)
        execute_qr(tm)
        r = extract_r(tm)
        assert np.allclose(r.T @ r, a.T @ a, atol=1e-7 * n)
