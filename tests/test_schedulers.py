"""Scheduler-specific behaviour tests (QUARK / StarPU / OmpSs)."""

import pytest

from repro.core.simbackend import SimulationBackend
from repro.core.task import Program
from repro.kernels.distributions import ConstantModel
from repro.kernels.timing import KernelModelSet
from repro.schedulers import (
    Codelet,
    HistoryPerfModel,
    OmpSsScheduler,
    QuarkScheduler,
    StarPUScheduler,
    make_scheduler,
)


def _models(kernels, duration=1e-3):
    return KernelModelSet(models={k: ConstantModel(duration) for k in kernels})


def _independent_tasks(kernels):
    prog = Program("indep")
    for i, kernel in enumerate(kernels):
        ref = prog.registry.alloc(f"x{i}", 64, key=(f"x{i}",))
        prog.add_task(kernel, [ref.write()], priority=i)
    return prog


class TestFactory:
    def test_make_scheduler_names(self):
        assert isinstance(make_scheduler("quark", 4), QuarkScheduler)
        assert isinstance(make_scheduler("starpu", 4), StarPUScheduler)
        assert isinstance(make_scheduler("ompss", 4), OmpSsScheduler)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_scheduler("cilk", 4)

    def test_kwargs_forwarded(self):
        sched = make_scheduler("starpu", 4, policy="dmda")
        assert sched.policy == "dmda"


class TestQuark:
    def test_priority_queue_orders_ready_tasks(self):
        # One worker, independent tasks with increasing priority: execution
        # must be highest-priority-first among simultaneously-ready tasks.
        prog = _independent_tasks(["K"] * 5)
        sched = QuarkScheduler(1, insert_cost=0.0, dispatch_overhead=0.0,
                               completion_cost=0.0)
        trace = sched.run(prog, SimulationBackend(_models(["K"])), seed=0)
        # All five are inserted at t=0; task 4 has the highest priority.
        order = [e.task_id for e in sorted(trace.events)]
        assert order == [4, 3, 2, 1, 0]

    def test_lifo_queue_option(self):
        prog = _independent_tasks(["K"] * 4)
        sched = QuarkScheduler(1, queue="lifo", insert_cost=0.0,
                               dispatch_overhead=0.0, completion_cost=0.0)
        trace = sched.run(prog, SimulationBackend(_models(["K"])), seed=0)
        assert [e.task_id for e in sorted(trace.events)] == [3, 2, 1, 0]

    def test_invalid_queue_rejected(self):
        with pytest.raises(ValueError):
            QuarkScheduler(2, queue="random")

    def test_quiesce_counters_balanced_after_run(self):
        sched = QuarkScheduler(2)
        prog = _independent_tasks(["K"] * 6)
        sched.run(prog, SimulationBackend(_models(["K"])), seed=0)
        assert sched.bookkeeping_complete()

    def test_master_is_worker_flag(self):
        assert QuarkScheduler(2).master_is_worker is True


class TestStarPU:
    def test_all_policies_complete(self):
        from repro.algorithms import cholesky_program

        prog_kernels = ("DPOTRF", "DTRSM", "DSYRK", "DGEMM")
        for policy in ("eager", "prio", "ws", "dmda"):
            prog = cholesky_program(5, 16)
            sched = StarPUScheduler(4, policy=policy)
            trace = sched.run(prog, SimulationBackend(_models(prog_kernels)), seed=0)
            trace.validate()
            assert len(trace) == len(prog)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown StarPU policy"):
            StarPUScheduler(2, policy="heft")

    def test_perf_model_learns_during_run(self):
        prog = _independent_tasks(["KA"] * 3 + ["KB"] * 3)
        sched = StarPUScheduler(2, policy="dmda")
        models = KernelModelSet(
            models={"KA": ConstantModel(1e-3), "KB": ConstantModel(4e-3)}
        )
        sched.run(prog, SimulationBackend(models), seed=0)
        assert sched.perf_model.expected("KA") == pytest.approx(1e-3, rel=1e-6)
        assert sched.perf_model.expected("KB") == pytest.approx(4e-3, rel=1e-6)
        assert sched.perf_model.observations("KA") == 3

    def test_perf_model_resets_between_runs(self):
        prog = _independent_tasks(["KA"] * 2)
        sched = StarPUScheduler(2, policy="eager")
        sched.run(prog, SimulationBackend(_models(["KA"])), seed=0)
        first = sched.perf_model.observations("KA")
        sched.run(_independent_tasks(["KA"] * 2), SimulationBackend(_models(["KA"])), seed=0)
        assert sched.perf_model.observations("KA") == first

    def test_eager_is_fifo(self):
        prog = _independent_tasks(["K"] * 4)  # priorities 0..3
        sched = StarPUScheduler(1, policy="eager", insert_cost=0.0,
                                dispatch_overhead=0.0)
        trace = sched.run(prog, SimulationBackend(_models(["K"])), seed=0)
        assert [e.task_id for e in sorted(trace.events)] == [0, 1, 2, 3]

    def test_prio_respects_priorities(self):
        # Task 0 dispatches the instant it is inserted (the worker is idle);
        # the rest queue while it runs and pop highest-priority-first.
        prog = _independent_tasks(["K"] * 4)
        sched = StarPUScheduler(1, policy="prio", insert_cost=0.0,
                                dispatch_overhead=0.0)
        trace = sched.run(prog, SimulationBackend(_models(["K"])), seed=0)
        assert [e.task_id for e in sorted(trace.events)] == [0, 3, 2, 1]

    def test_dmda_balances_independent_tasks(self):
        prog = _independent_tasks(["K"] * 8)
        sched = StarPUScheduler(4, policy="dmda", insert_cost=0.0)
        trace = sched.run(prog, SimulationBackend(_models(["K"])), seed=0)
        assert trace.tasks_per_worker() == [2, 2, 2, 2]

    def test_codelet_expected_duration(self):
        model = HistoryPerfModel(default=1e-4)
        model.update("GEMM", 2e-3)
        cl = Codelet("GEMM")
        assert cl.expected(model) == pytest.approx(2e-3)
        own = HistoryPerfModel(default=9e-4)
        assert Codelet("GEMM", model=own).expected(model) == pytest.approx(9e-4)

    def test_master_not_worker(self):
        assert StarPUScheduler(2).master_is_worker is False


class TestOmpSs:
    def test_immediate_successor_keeps_chain_on_one_worker(self):
        # A pure chain: with the immediate-successor optimisation, the worker
        # that completes task i runs task i+1 directly.
        prog = Program("chain")
        x = prog.registry.alloc("x", 64)
        for _ in range(6):
            prog.add_task("K", [x.rw()])
        sched = OmpSsScheduler(4, immediate_successor=True)
        trace = sched.run(prog, SimulationBackend(_models(["K"])), seed=0)
        workers = {e.worker for e in trace.events}
        assert len(workers) == 1

    def test_successor_bypass_disabled(self):
        sched = OmpSsScheduler(4, immediate_successor=False)
        assert sched.immediate_successor is False

    def test_invalid_queue_rejected(self):
        with pytest.raises(ValueError):
            OmpSsScheduler(2, queue="deque")

    def test_priority_queue_option(self):
        # As with StarPU prio: the first task dispatches on insertion, the
        # remainder drain in priority order.
        prog = _independent_tasks(["K"] * 4)
        sched = OmpSsScheduler(1, queue="priority", insert_cost=0.0,
                               dispatch_overhead=0.0)
        trace = sched.run(prog, SimulationBackend(_models(["K"])), seed=0)
        assert [e.task_id for e in sorted(trace.events)] == [0, 3, 2, 1]

    def test_no_task_lost_via_bounce_slots(self):
        # Diamond: 1 root, 2 middles released to the same worker, 1 join.
        prog = Program("diamond")
        a = prog.registry.alloc("a", 64, key=("a",))
        b = prog.registry.alloc("b", 64, key=("b",))
        c = prog.registry.alloc("c", 64, key=("c",))
        prog.add_task("K", [a.write()])
        prog.add_task("K", [a.read(), b.write()])
        prog.add_task("K", [a.read(), c.write()])
        prog.add_task("K", [b.read(), c.read()])
        trace = OmpSsScheduler(3).run(prog, SimulationBackend(_models(["K"])), seed=0)
        trace.validate()
        assert len(trace) == 4
