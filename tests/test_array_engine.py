"""Tests for the array-native (SoA + calendar queue) simulation core.

The headline guarantee: ``engine_backend="array"`` produces the *same
bytes* as the object engine.  The golden digests in
``tests/data/preopt_trace_digests.json`` must hold through the compiled C
event loop, the pure-Python array loop (compiled core forced off), and the
per-call adapter path real-mode runs take — with and without a probe
attached.  On top of that, a Hypothesis differential drives random hazard
DAGs through both backends, and the selection/fallback plumbing
(``REPRO_ENGINE_BACKEND``, ``RunSpec.engine_backend``, cache-key
compatibility) is pinned down.
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import cholesky_program, qr_program
from repro.bench import synthetic_models
from repro.core.metrics import RunMetrics
from repro.core.simbackend import SimulationBackend
from repro.core.simulator import run_real, simulate
from repro.core.soa import ENGINE_BACKENDS, SoAProgram, default_engine_backend
from repro.core.task import Program
from repro.obs import RecordingProbe
from repro.runner import ProgramSpec, RunSpec, SchedulerSpec
from repro.schedulers import array_engine as array_engine_module
from repro.schedulers import make_scheduler
from repro.schedulers.array_engine import (
    ArrayEngine,
    USING_COMPILED_CORE,
    array_backend_unsupported,
)
from repro.trace.events import ColumnTrace
from repro.trace.textio import dumps_trace

DATA = Path(__file__).parent / "data"
SCHEDULERS = ("quark", "starpu", "ompss")
DIGESTS = json.loads((DATA / "preopt_trace_digests.json").read_text())["digests"]


def _digest(trace) -> str:
    return hashlib.sha256(dumps_trace(trace).encode()).hexdigest()


@pytest.fixture(params=["compiled", "pure-python"])
def core_variant(request, monkeypatch):
    """Run a test under the C event loop and the pure-Python array loop.

    Forcing ``_c_run = None`` routes every ``ArrayEngine.run()`` through the
    interpreted loop; the ``compiled`` variant skips (not fails) where no C
    core was built so the suite stays green on compiler-less machines.
    """
    if request.param == "compiled":
        if not USING_COMPILED_CORE:
            pytest.skip("compiled array core not built")
    else:
        monkeypatch.setattr(array_engine_module, "_c_run", None)
    return request.param


# -- golden byte-identity ---------------------------------------------------
class TestGoldenDigests:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_simulated_matches_golden(self, scheduler, core_variant):
        for algorithm, gen in (("cholesky", cholesky_program), ("qr", qr_program)):
            program = gen(8, 200)
            models = synthetic_models(program)
            trace = simulate(
                program,
                make_scheduler(scheduler, 16),
                models,
                seed=1234,
                warmup_penalty=1e-3,
                engine_backend="array",
            )
            assert _digest(trace) == DIGESTS[f"sim/{algorithm}/{scheduler}/nt8"], (
                f"array simulated trace drifted ({core_variant}): "
                f"{algorithm}/{scheduler}"
            )

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_real_mode_matches_golden(self, scheduler):
        # MachineBackend has no sweep transforms, so real mode exercises the
        # per-call adapter path of the pure-Python array loop.
        for algorithm, gen in (("cholesky", cholesky_program), ("qr", qr_program)):
            program = gen(8, 200)
            trace = run_real(
                program,
                make_scheduler(scheduler, 16),
                "magny_cours_48",
                seed=77,
                engine_backend="array",
            )
            assert _digest(trace) == DIGESTS[f"real/{algorithm}/{scheduler}/nt8"], (
                f"array real-mode trace drifted: {algorithm}/{scheduler}"
            )

    def test_probe_attachment_does_not_perturb_trace(self, core_variant):
        program = cholesky_program(8, 200)
        models = synthetic_models(program)
        trace = simulate(
            program,
            make_scheduler("quark", 16),
            models,
            seed=1234,
            warmup_penalty=1e-3,
            engine_backend="array",
            probe=RecordingProbe(),
        )
        assert _digest(trace) == DIGESTS["sim/cholesky/quark/nt8"]

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_probe_stream_matches_object_engine(self, scheduler):
        program = cholesky_program(6, 200)
        models = synthetic_models(program)
        probes = {}
        for backend in ENGINE_BACKENDS:
            probe = RecordingProbe()
            simulate(
                program,
                make_scheduler(scheduler, 16),
                models,
                seed=7,
                engine_backend=backend,
                probe=probe,
            )
            probes[backend] = probe
        assert probes["object"].events == probes["array"].events
        assert probes["object"].deps == probes["array"].deps


# -- metrics parity ---------------------------------------------------------
class TestMetricsParity:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_counters_equal_across_backends(self, scheduler, core_variant):
        program = cholesky_program(8, 200)
        models = synthetic_models(program)
        collected = {}
        for backend in ENGINE_BACKENDS:
            metrics = RunMetrics()
            simulate(
                program,
                make_scheduler(scheduler, 16),
                models,
                seed=1234,
                warmup_penalty=1e-3,
                engine_backend=backend,
                metrics=metrics,
            )
            collected[backend] = metrics
        a, b = collected["object"], collected["array"]
        assert a.events_processed == b.events_processed
        assert a.heap_pushes == b.heap_pushes
        assert a.heap_pops == b.heap_pops
        assert a.peak_heap_depth == b.peak_heap_depth
        assert a.tasks_executed == b.tasks_executed
        assert a.window_stalls == b.window_stalls
        assert a.dispatch_stalls == b.dispatch_stalls
        assert a.peak_ready_depth == b.peak_ready_depth
        assert a.makespan == pytest.approx(b.makespan)


# -- differential (Hypothesis) ----------------------------------------------
@st.composite
def _random_programs(draw):
    """Small random task DAGs with genuine RAW/WAR/WAW hazard structure."""
    n_refs = draw(st.integers(min_value=2, max_value=6))
    n_tasks = draw(st.integers(min_value=1, max_value=25))
    program = Program("hypothesis")
    refs = [program.registry.alloc("R", 64, key=("R", i)) for i in range(n_refs)]
    for _ in range(n_tasks):
        kernel = draw(st.sampled_from(["DGEMM", "DTRSM", "DSYRK"]))
        w = draw(st.integers(min_value=0, max_value=n_refs - 1))
        reads = draw(
            st.lists(st.integers(min_value=0, max_value=n_refs - 1), max_size=3)
        )
        accesses = [refs[w].write()] + [refs[r].read() for r in set(reads) - {w}]
        program.add_task(kernel, accesses, flops=1.0)
    return program


class TestDifferential:
    @settings(max_examples=25, deadline=None)
    @given(
        program=_random_programs(),
        scheduler=st.sampled_from(SCHEDULERS),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_workers=st.sampled_from([1, 2, 13, 16, 48]),
    )
    def test_array_trace_identical_to_object(
        self, program, scheduler, seed, n_workers
    ):
        models = synthetic_models(program)
        traces = {}
        for backend in ENGINE_BACKENDS:
            traces[backend] = simulate(
                program,
                make_scheduler(scheduler, n_workers),
                models,
                seed=seed,
                engine_backend=backend,
            )
        assert dumps_trace(traces["object"]) == dumps_trace(traces["array"])


# -- backend selection, fallback, spec plumbing -----------------------------
class TestBackendSelection:
    def test_default_engine_backend_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_BACKEND", raising=False)
        assert default_engine_backend() == "object"
        for backend in ENGINE_BACKENDS:
            monkeypatch.setenv("REPRO_ENGINE_BACKEND", backend)
            assert default_engine_backend() == backend
        monkeypatch.setenv("REPRO_ENGINE_BACKEND", "vectorized")
        with pytest.raises(ValueError, match="REPRO_ENGINE_BACKEND"):
            default_engine_backend()

    def test_unknown_backend_rejected(self):
        program = cholesky_program(4, 100)
        models = synthetic_models(program)
        with pytest.raises(ValueError, match="unknown engine backend"):
            make_scheduler("quark", 4).run(
                program, SimulationBackend(models), engine_backend="vectorized"
            )

    def test_unsupported_reasons(self):
        assert array_backend_unsupported(make_scheduler("quark", 4)) is None
        assert array_backend_unsupported(make_scheduler("ompss", 4)) is None
        assert array_backend_unsupported(make_scheduler("starpu", 4)) is None
        assert "dmda" in array_backend_unsupported(
            make_scheduler("starpu", 4, policy="dmda")
        )
        assert "serialized" in array_backend_unsupported(
            make_scheduler("quark", 4), engine_mode="multicell"
        )

    def test_fallback_records_reason_and_preserves_trace(self):
        program = cholesky_program(6, 200)
        models = synthetic_models(program)
        traces, metrics = {}, RunMetrics()
        traces["object"] = simulate(
            program, make_scheduler("starpu", 16, policy="dmda"), models, seed=3
        )
        traces["array"] = simulate(
            program,
            make_scheduler("starpu", 16, policy="dmda"),
            models,
            seed=3,
            engine_backend="array",
            metrics=metrics,
        )
        assert dumps_trace(traces["object"]) == dumps_trace(traces["array"])
        record = metrics.extra["engine_backend"]
        assert record["requested"] == "array"
        assert record["used"] == "object"
        assert "dmda" in record["fallback_reason"]

    def test_array_run_records_backend_used(self):
        program = cholesky_program(4, 100)
        models = synthetic_models(program)
        metrics = RunMetrics()
        simulate(
            program,
            make_scheduler("quark", 4),
            models,
            seed=0,
            engine_backend="array",
            metrics=metrics,
        )
        assert metrics.extra["engine_backend"] == {
            "requested": "array",
            "used": "array",
        }

    def test_object_run_leaves_metrics_extra_untouched(self):
        program = cholesky_program(4, 100)
        models = synthetic_models(program)
        metrics = RunMetrics()
        simulate(
            program,
            make_scheduler("quark", 4),
            models,
            seed=0,
            metrics=metrics,
            engine_backend="object",
        )
        assert "engine_backend" not in metrics.extra


class TestRunSpec:
    def _spec(self, **kwargs):
        return RunSpec(
            program=ProgramSpec("cholesky", 4, 100),
            scheduler=SchedulerSpec("quark", 16),
            machine="magny_cours_48",
            seed=0,
            mode="real",
            **kwargs,
        )

    def test_object_backend_keeps_historical_cache_key(self):
        # engine_backend="object" is normalized out of the key so every
        # pre-existing cache entry stays valid.
        assert self._spec().cache_key() == self._spec(engine_backend="object").cache_key()
        assert "engine_backend" not in json.dumps(self._spec().cache_key())

    def test_array_backend_changes_cache_key(self):
        assert self._spec(engine_backend="array").cache_key() != self._spec().cache_key()

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="engine_backend"):
            self._spec(engine_backend="vectorized")

    def test_threaded_runtime_requires_object_backend(self):
        with pytest.raises(ValueError, match="threaded"):
            self._spec(runtime="threaded", engine_backend="array")


# -- SoA construction and trace columns -------------------------------------
class TestSoAProgram:
    def test_for_program_caches_per_program(self):
        program = cholesky_program(4, 100)
        first = SoAProgram.for_program(program)
        assert SoAProgram.for_program(program) is first
        # keep_preds=True needs the dependence tuples; a cached build
        # without them cannot satisfy it.
        with_preds = SoAProgram.for_program(program, keep_preds=True)
        assert with_preds.preds_tuples is not None
        assert SoAProgram.for_program(program) is with_preds

    def test_cache_invalidated_by_append(self):
        program = Program("grow")
        ref = program.registry.alloc("T", 64, key=("T", 0))
        program.add_task("DGEMM", [ref.write()], flops=1.0)
        first = SoAProgram.for_program(program)
        program.add_task("DGEMM", [ref.write()], flops=1.0)
        second = SoAProgram.for_program(program)
        assert second is not first
        assert second.n_tasks == 2

    def test_wide_task_beyond_workers_raises(self):
        program = Program("wide")
        ref = program.registry.alloc("T", 64, key=("T", 0))
        program.add_task("DGEMM", [ref.write()], flops=1.0).width = 8
        models = synthetic_models(program)
        with pytest.raises(ValueError, match="width"):
            simulate(
                program,
                make_scheduler("quark", 4),
                models,
                seed=0,
                engine_backend="array",
            )


class TestColumnTrace:
    def _array_trace(self):
        program = cholesky_program(4, 100)
        models = synthetic_models(program)
        return simulate(
            program,
            make_scheduler("quark", 8),
            models,
            seed=5,
            engine_backend="array",
        ), len(program)

    def test_lazy_columns_serve_len_and_makespan(self):
        trace, n_tasks = self._array_trace()
        assert isinstance(trace, ColumnTrace)
        assert trace._cols is not None  # not yet materialized
        assert len(trace) == n_tasks
        assert trace.makespan > 0.0
        assert trace._cols is not None  # still lazy after both reads

    def test_materialized_events_are_plain_python(self):
        trace, n_tasks = self._array_trace()
        events = trace.events
        assert len(events) == n_tasks
        for e in events[:10]:
            assert type(e.task_id) is int
            assert type(e.worker) is int
            assert type(e.start) is float
            assert type(e.end) is float


# -- calibrated model sets (repro.calib) ------------------------------------
class TestCalibratedModels:
    """The calibration layer must not break the headline byte-identity.

    Mixture/KDE models sample via one inverse-CDF draw per task
    (``rng_use == "other"``), which keeps the calibrated model set
    non-batchable — both engines fall back to the per-call DirectSampler,
    so byte identity has to hold with no engine-side special cases.
    """

    @pytest.fixture(scope="class")
    def calibrated(self):
        from repro.calib import fit_from_samples
        from repro.machine import collect_samples

        program = cholesky_program(6, 200)
        trace = run_real(
            program, make_scheduler("quark", 16), "magny_cours_48", seed=3
        )
        document = fit_from_samples(collect_samples(trace))
        return program, document

    def test_refit_selects_nontrivial_families(self, calibrated):
        _, document = calibrated
        models = document.to_model_set()
        assert models.family == "calibrated"
        # Noisy-machine samples must not all collapse to constants, and the
        # set must refuse batch sampling (that is what keeps the engines on
        # the shared per-call path).
        assert any(f.family != "constant" for f in document.kernels.values())
        assert not models.batchable

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_array_identical_to_object_under_calibration(
        self, calibrated, scheduler, core_variant
    ):
        program, document = calibrated
        traces = {}
        for backend in ENGINE_BACKENDS:
            traces[backend] = simulate(
                program,
                make_scheduler(scheduler, 16),
                document.to_model_set(),
                seed=99,
                warmup_penalty=1e-3,
                engine_backend=backend,
            )
        assert dumps_trace(traces["object"]) == dumps_trace(traces["array"])

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_refit_reproduces_makespan_within_5_percent(self, scheduler):
        # The differential claim behind ``sweep --calibration``: models
        # refit from a run's own samples must predict that workload's
        # makespan inside the paper's 5% accuracy band, on every scheduler.
        from repro.calib import fit_from_samples
        from repro.machine import collect_samples, get_machine

        machine = get_machine("magny_cours_48")
        program = cholesky_program(8, 200)
        real = run_real(program, make_scheduler(scheduler, 16), machine, seed=11)
        models = fit_from_samples(collect_samples(real)).to_model_set()
        sims = [
            simulate(
                program,
                make_scheduler(scheduler, 16),
                models,
                seed=12 + s,
                warmup_penalty=machine.warmup_penalty,
            ).makespan
            for s in range(3)  # mean-of-3, like the portfolio oracle
        ]
        sim = sum(sims) / len(sims)
        err = abs(sim - real.makespan) / real.makespan
        assert err < 0.05, f"{scheduler}: calibrated sim off by {err * 100:.2f}%"
