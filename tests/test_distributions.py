"""Unit and property tests for duration-distribution models."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.distributions import (
    MODEL_FAMILIES,
    ConstantModel,
    EmpiricalModel,
    GammaModel,
    LognormalModel,
    NormalModel,
    UniformModel,
    best_fit,
    fit_all_families,
    fit_family,
)

PARAMETRIC = ("normal", "gamma", "lognormal")


def _samples(n=500, mean=1e-3, cv=0.1, seed=7):
    # A fresh generator per call keeps every test's samples independent of
    # execution order (a shared module-level stream shifts whenever a family
    # is added to MODEL_FAMILIES, which several tests parametrize over).
    rng = np.random.default_rng(seed)
    return np.abs(rng.normal(mean, cv * mean, size=n)) + 1e-9


class TestFitInterface:
    @pytest.mark.parametrize("family", sorted(MODEL_FAMILIES))
    def test_fit_and_sample_positive(self, family):
        model = fit_family(family, _samples())
        rng = np.random.default_rng(0)
        draws = [model.sample(rng) for _ in range(200)]
        assert all(d > 0 for d in draws)

    @pytest.mark.parametrize("family", sorted(MODEL_FAMILIES))
    def test_mean_close_to_sample_mean(self, family):
        samples = _samples()
        model = fit_family(family, samples)
        if family == "lognormal":
            tol = 0.05  # geometric vs arithmetic mean gap at cv=0.1 is tiny
        elif family == "uniform":
            tol = 0.06  # midrange estimator: extremes sit ~3 sigma out
        else:
            tol = 0.02
        assert model.mean == pytest.approx(float(np.mean(samples)), rel=tol)

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError, match="unknown model family"):
            fit_family("cauchy", _samples())

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_family("normal", [])

    def test_nonpositive_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_family("normal", [1.0, -0.5])

    def test_nonfinite_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_family("normal", [1.0, float("nan")])

    def test_single_sample_fits(self):
        for family in sorted(MODEL_FAMILIES):
            model = fit_family(family, [2e-3])
            assert model.mean == pytest.approx(2e-3, rel=0.01)


class TestParameterRecovery:
    def test_normal_recovers_parameters(self):
        rng = np.random.default_rng(1)
        samples = np.abs(rng.normal(5e-3, 5e-4, size=5000))
        m = NormalModel.fit(samples)
        assert m.mu == pytest.approx(5e-3, rel=0.02)
        assert m.sigma == pytest.approx(5e-4, rel=0.1)

    def test_lognormal_recovers_parameters(self):
        rng = np.random.default_rng(2)
        samples = rng.lognormal(-6.0, 0.2, size=5000)
        m = LognormalModel.fit(samples)
        assert m.mu_log == pytest.approx(-6.0, abs=0.02)
        assert m.sigma_log == pytest.approx(0.2, rel=0.1)

    def test_gamma_survives_numerically_identical_samples(self):
        # Regression: identical values have std ~1e-16 (not exactly 0 after
        # float mean subtraction), which used to crash scipy's gamma MLE.
        samples = [3.535833175324398] * 3
        m = GammaModel.fit(samples)
        assert m.mean == pytest.approx(3.535833175324398, rel=1e-6)
        assert m.std < 1e-2

    def test_gamma_recovers_mean_and_var(self):
        rng = np.random.default_rng(3)
        shape, scale = 25.0, 2e-4
        samples = rng.gamma(shape, scale, size=5000)
        m = GammaModel.fit(samples)
        assert m.mean == pytest.approx(shape * scale, rel=0.05)
        assert m.std == pytest.approx(math.sqrt(shape) * scale, rel=0.15)

    def test_uniform_covers_range(self):
        samples = _samples()
        m = UniformModel.fit(samples)
        assert m.lo == pytest.approx(float(samples.min()))
        assert m.hi == pytest.approx(float(samples.max()))

    def test_constant_is_mean(self):
        samples = _samples()
        m = ConstantModel.fit(samples)
        assert m.value == pytest.approx(float(samples.mean()))
        assert m.std == 0.0

    def test_empirical_resamples_observed_values(self):
        samples = np.array([1e-3, 2e-3, 3e-3])
        m = EmpiricalModel.fit(samples)
        rng = np.random.default_rng(0)
        draws = {m.sample(rng) for _ in range(100)}
        assert draws <= set(samples)
        assert len(draws) == 3


class TestGoodnessOfFit:
    def test_right_family_wins_aic_lognormal(self):
        rng = np.random.default_rng(4)
        samples = rng.lognormal(-6, 0.5, size=3000)  # strongly skewed
        best = best_fit(samples, PARAMETRIC, criterion="aic")
        assert best.family == "lognormal"

    def test_right_family_wins_ks_normal(self):
        rng = np.random.default_rng(5)
        samples = np.abs(rng.normal(1.0, 0.05, size=3000))
        best = best_fit(samples, PARAMETRIC, criterion="ks")
        assert best.family in ("normal", "gamma")  # both near-symmetric here

    def test_ks_statistic_in_unit_interval(self):
        samples = _samples()
        for family in PARAMETRIC:
            ks = fit_family(family, samples).ks_statistic(samples)
            assert 0.0 <= ks <= 1.0

    def test_good_fit_has_small_ks(self):
        samples = _samples(n=2000)
        ks = NormalModel.fit(samples).ks_statistic(samples)
        assert ks < 0.05

    def test_bad_fit_has_large_ks(self):
        samples = _samples(n=2000)
        bad = NormalModel(mu=10.0, sigma=0.1)
        assert bad.ks_statistic(samples) > 0.9

    def test_aic_prefers_likely_model(self):
        samples = _samples(n=2000)
        good = NormalModel.fit(samples)
        bad = NormalModel(mu=float(np.mean(samples)) * 2, sigma=good.sigma)
        assert good.aic(samples) < bad.aic(samples)

    def test_unknown_criterion_rejected(self):
        with pytest.raises(ValueError):
            best_fit(_samples(), PARAMETRIC, criterion="bic")

    def test_fit_all_families_keys(self):
        fits = fit_all_families(_samples())
        assert set(fits) == {"normal", "gamma", "lognormal"}


class TestPdfCdf:
    @pytest.mark.parametrize("family", PARAMETRIC + ("uniform",))
    def test_pdf_integrates_to_one(self, family):
        model = fit_family(family, _samples())
        lo = max(model.mean - 8 * model.std, 1e-12)
        hi = model.mean + 8 * model.std
        xs = np.linspace(lo, hi, 20001)
        integral = np.trapezoid(model.pdf(xs), xs)
        assert integral == pytest.approx(1.0, abs=0.02)

    @pytest.mark.parametrize("family", PARAMETRIC)
    def test_cdf_monotone(self, family):
        model = fit_family(family, _samples())
        xs = np.linspace(model.mean * 0.5, model.mean * 1.5, 100)
        cdf = model.cdf(xs)
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_constant_cdf_step(self):
        m = ConstantModel(1.0)
        assert m.cdf(np.array([0.5]))[0] == 0.0
        assert m.cdf(np.array([1.5]))[0] == 1.0

    def test_empirical_cdf_matches_fraction(self):
        m = EmpiricalModel.fit([1.0, 2.0, 3.0, 4.0])
        assert m.cdf(np.array([2.5]))[0] == pytest.approx(0.5)


class TestSamplingProperties:
    @given(
        mean=st.floats(min_value=1e-6, max_value=1.0),
        cv=st.floats(min_value=0.01, max_value=0.5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_normal_samples_never_nonpositive(self, mean, cv, seed):
        model = NormalModel(mu=mean, sigma=cv * mean)
        rng = np.random.default_rng(seed)
        assert all(model.sample(rng) > 0 for _ in range(50))

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_sampling_is_seed_deterministic(self, seed):
        model = LognormalModel(mu_log=-6.0, sigma_log=0.3)
        a = [model.sample(np.random.default_rng(seed)) for _ in range(3)]
        b = [model.sample(np.random.default_rng(seed)) for _ in range(3)]
        assert a == b

    @settings(max_examples=20, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=1e-6, max_value=10.0, allow_nan=False),
            min_size=2,
            max_size=50,
        )
    )
    def test_every_family_fits_arbitrary_positive_samples(self, samples):
        for family in sorted(MODEL_FAMILIES):
            model = fit_family(family, samples)
            assert math.isfinite(model.mean)
            assert model.mean > 0
