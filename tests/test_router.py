"""Tests of the fleet router: affinity, admission, failover, aggregation.

Real shards are expensive, so these tests stand up *in-process* shard
daemons — each a :class:`ReproServer` over a :class:`SimulationService`
with an injected ``run_fn`` — and point a :class:`RouterService` at their
ephemeral ports.  That exercises the full HTTP forwarding path (real
sockets on both hops) while keeping every run instant and deterministic.
Failover is tested by actually shutting a shard's listener down.
"""

from __future__ import annotations

import threading

import pytest

from repro.service import (
    ReproRouter,
    ReproServer,
    RouterService,
    RunRequest,
    ServiceClient,
    ServiceOverloaded,
    ServiceUnavailable,
    ShardAddress,
    SimulationService,
)
from repro.service.client import http_json_request
from repro.service.protocol import SERVICE_SCHEMA

from .test_service import Gate, fake_result, make_spec


def fake_run(request: RunRequest):
    """An instant injected run_fn (run_fn receives the whole request)."""
    return fake_result(request.spec)


class ShardHarness:
    """N in-process shard daemons plus a router over them."""

    def __init__(self, n: int, run_fn=fake_run, *, workers: int = 4, **router_kwargs):
        self.services = []
        self.servers = []
        self._stopped = set()
        addresses = []
        for i in range(n):
            svc = SimulationService(workers=workers, max_pending=8, run_fn=run_fn)
            server = ReproServer(svc, port=0)
            server.start()
            self.services.append(svc)
            self.servers.append(server)
            host, port = server.address
            addresses.append(ShardAddress(str(i), host, port))
        self.router = RouterService(addresses, **router_kwargs)

    def stop_shard(self, i: int) -> None:
        if i in self._stopped:
            return
        self._stopped.add(i)
        self.servers[i].shutdown(drain_timeout_s=5)
        self.servers[i].wait_closed(5)

    def close(self) -> None:
        self.router.close(timeout_s=5)
        for i in range(len(self.servers)):
            self.stop_shard(i)


@pytest.fixture
def harness(request):
    built = []

    def build(n: int = 2, run_fn=fake_run, **kwargs) -> ShardHarness:
        h = ShardHarness(n, run_fn, **kwargs)
        built.append(h)
        return h

    yield build
    for h in built:
        h.close()


def run_doc(seed: int = 0, nt: int = 4, **kwargs) -> dict:
    return RunRequest(spec=make_spec(seed=seed, nt=nt), **kwargs).to_document()


class TestForwarding:
    def test_routes_to_the_keys_home_shard(self, harness):
        h = harness(3)
        for seed in range(12):
            doc = run_doc(seed=seed)
            home = h.router.shard_for(make_spec(seed=seed).cache_key())
            status, out, _ = h.router.handle_run(doc)
            assert status == 200 and out["ok"]
            stats = h.router.stats_document()
            assert stats["per_shard"][home]["routed"] >= 1

    def test_identical_specs_always_hit_the_same_shard(self, harness):
        h = harness(3)
        for _ in range(5):
            status, out, _ = h.router.handle_run(run_doc(seed=7))
            assert status == 200 and out["ok"]
        routed = [
            s["routed"] for s in h.router.stats_document()["per_shard"].values()
        ]
        assert sorted(routed) == [0, 0, 5]

    def test_single_flight_survives_the_router_hop(self, harness):
        """Concurrent identical requests coalesce on the owning shard."""
        gate = Gate()
        h = harness(2, run_fn=gate)
        results = []

        def issue():
            results.append(h.router.handle_run(run_doc(seed=1)))

        threads = [threading.Thread(target=issue) for _ in range(4)]
        for t in threads:
            t.start()
        from .test_service import wait_until

        # Hold the gate until all three duplicates have joined the first
        # request's flight; releasing earlier lets a straggler arrive after
        # the run completes and start a fresh one.
        wait_until(lambda: gate.started() >= 1)
        wait_until(lambda: sum(s.stats().coalesced for s in h.services) == 3)
        gate.release.set()
        for t in threads:
            t.join(timeout=10)
        assert all(status == 200 and out["ok"] for status, out, _ in results)
        coalesced = sum(out.get("coalesced", False) for _, out, _ in results)
        assert gate.started() == 1 and coalesced == 3

    def test_bad_request_is_rejected_without_forwarding(self, harness):
        h = harness(1)
        status, out, _ = h.router.handle_run({"schema": SERVICE_SCHEMA, "spec": {}})
        assert status == 400 and out["error"] == "bad_request"
        assert h.router.stats_document()["router"]["routed"] == 0


class TestAdmission:
    def test_router_side_inflight_cap_rejects_with_hint(self, harness):
        """The router 429s before opening an upstream connection."""
        gate = Gate()
        h = harness(1, run_fn=gate, max_inflight=2)
        outcomes = []
        threads = [
            threading.Thread(
                target=lambda s: outcomes.append(h.router.handle_run(run_doc(seed=s))),
                args=(seed,),
            )
            for seed in range(2)
        ]
        from .test_service import wait_until

        for t in threads:
            t.start()
        wait_until(
            lambda: h.router.stats_document()["per_shard"]["0"]["inflight"] == 2
        )
        status, out, retry_after = h.router.handle_run(run_doc(seed=99))
        assert status == 429 and out["error"] == "overloaded"
        assert out["retry_after_s"] is not None and retry_after is not None
        gate.release.set()
        for t in threads:
            t.join(timeout=10)
        assert h.router.stats_document()["router"]["rejected_inflight"] >= 1

    def test_shard_retry_hint_propagates_to_router_rejections(self, harness):
        """A shard's own 429 hint becomes the router's quoted Retry-After."""
        gate = Gate()
        # shard admits 1 distinct spec (workers=1, max_pending=1): the second
        # distinct spec draws a genuine shard-side 429 whose hint the router
        # must record and quote later.
        h = harness(1, run_fn=gate, workers=1, max_inflight=2)
        h.services[0].max_pending = 1
        t = threading.Thread(target=lambda: h.router.handle_run(run_doc(seed=0)))
        t.start()
        from .test_service import wait_until

        wait_until(lambda: gate.started() == 1)
        status, out, _ = h.router.handle_run(run_doc(seed=1))
        assert status == 429
        shard_hint = out["retry_after_s"]
        assert shard_hint is not None
        stats = h.router.stats_document()
        assert stats["per_shard"]["0"]["last_retry_after_s"] == pytest.approx(shard_hint)
        # now trip the *router-side* cap: a duplicate of the gated spec
        # coalesces shard-side (admission-free) and blocks, holding the
        # router's second in-flight slot; the next request must be rejected
        # by the router itself, quoting the recorded shard hint.
        t2 = threading.Thread(target=lambda: h.router.handle_run(run_doc(seed=0)))
        t2.start()
        wait_until(
            lambda: h.router.stats_document()["per_shard"]["0"]["inflight"] >= 2
        )
        status, out, retry_after = h.router.handle_run(run_doc(seed=3))
        assert status == 429
        assert retry_after == pytest.approx(shard_hint)
        gate.release.set()
        t.join(timeout=10)
        t2.join(timeout=10)


class TestFailover:
    def test_dead_shard_is_marked_down_and_request_rehashed(self, harness):
        h = harness(3, revive_after_s=60.0)
        # find a seed owned by shard "0", then kill shard 0
        seed = next(
            s for s in range(100) if h.router.shard_for(make_spec(seed=s).cache_key()) == "0"
        )
        h.stop_shard(0)
        status, out, _ = h.router.handle_run(run_doc(seed=seed))
        assert status == 200 and out["ok"]
        stats = h.router.stats_document()
        assert stats["per_shard"]["0"]["up"] is False
        assert stats["router"]["marked_down"] == 1
        assert stats["router"]["retried"] >= 1
        # successor matches the ring's exclusion answer
        successor = h.router._ring.route(make_spec(seed=seed).cache_key(), exclude={"0"})
        assert stats["per_shard"][successor]["routed"] >= 1

    def test_all_shards_dead_yields_retriable_unavailable(self, harness):
        h = harness(2, retries=3, revive_after_s=60.0)
        h.stop_shard(0)
        h.stop_shard(1)
        status, out, retry_after = h.router.handle_run(run_doc(seed=0))
        assert status == 503 and out["error"] == "unavailable"
        assert retry_after is not None

    def test_down_shard_revives_after_the_window(self, harness):
        h = harness(2, revive_after_s=0.05)
        seed = next(
            s for s in range(100) if h.router.shard_for(make_spec(seed=s).cache_key()) == "0"
        )
        h.stop_shard(0)
        status, _, _ = h.router.handle_run(run_doc(seed=seed))
        assert status == 200
        assert h.router.stats_document()["per_shard"]["0"]["up"] is False
        # restart a listener on the *same* port so the probe can succeed
        import time

        host, port = self.restart_shard(h, 0)
        time.sleep(0.06)  # past the revive window: next forward is the probe
        status, out, _ = h.router.handle_run(run_doc(seed=seed))
        assert status == 200 and out["ok"]
        stats = h.router.stats_document()
        assert stats["per_shard"]["0"]["up"] is True
        assert stats["router"]["revived"] >= 1

    @staticmethod
    def restart_shard(h: ShardHarness, i: int) -> tuple:
        host, port = h.servers[i].address
        svc = SimulationService(workers=2, max_pending=8, run_fn=fake_run)
        server = ReproServer(svc, host=host, port=port)
        server.start()
        h.services[i] = svc
        h.servers[i] = server
        h._stopped.discard(i)
        return host, port


class TestBatch:
    def test_batch_fans_out_and_preserves_order(self, harness):
        h = harness(3)
        items = [run_doc(seed=s) for s in range(9)]
        status, out, _ = h.router.handle_batch(
            {"schema": SERVICE_SCHEMA, "requests": items}
        )
        assert status == 200 and out["ok"]
        assert len(out["responses"]) == 9
        for seed, resp in enumerate(out["responses"]):
            assert resp["ok"], resp
            assert resp["trace"] == f"fake-trace-{seed}\n"
        spread = {
            sid: s["routed"] for sid, s in h.router.stats_document()["per_shard"].items()
        }
        assert sum(spread.values()) == 9 and sum(1 for v in spread.values() if v) >= 2

    def test_batch_retries_items_from_a_dead_shard(self, harness):
        h = harness(2, revive_after_s=60.0)
        h.stop_shard(0)
        items = [run_doc(seed=s) for s in range(6)]
        status, out, _ = h.router.handle_batch(
            {"schema": SERVICE_SCHEMA, "requests": items}
        )
        assert status == 200
        assert all(resp["ok"] for resp in out["responses"])
        assert h.router.stats_document()["per_shard"]["1"]["routed"] == 6

    def test_batch_rejects_malformed_envelope_and_items(self, harness):
        h = harness(1)
        status, out, _ = h.router.handle_batch({"schema": SERVICE_SCHEMA})
        assert status == 400
        status, out, _ = h.router.handle_batch(
            {"schema": SERVICE_SCHEMA, "requests": [run_doc(seed=0), {"spec": {}}]}
        )
        assert status == 200
        assert out["responses"][0]["ok"]
        assert out["responses"][1]["error"] == "bad_request"


class TestAggregation:
    def test_health_serving_then_degraded(self, harness):
        h = harness(2, revive_after_s=60.0)
        status, doc = h.router.health_document()
        assert status == 200 and doc["status"] == "serving"
        assert doc["shards_up"] == 2 and doc["role"] == "router"
        h.stop_shard(1)
        status, doc = h.router.health_document()
        assert doc["status"] == "degraded" and doc["shards_up"] == 1
        assert doc["shards"]["1"]["ok"] is False

    def test_stats_sums_shard_counters(self, harness):
        h = harness(2)
        for seed in range(8):
            h.router.handle_run(run_doc(seed=seed))
        stats = h.router.stats_document()
        assert stats["totals"]["requests"] == 8
        assert stats["totals"]["executed"] == 8
        assert stats["router"]["routed"] == 8
        per_shard_requests = sum(
            s["service"]["requests"] for s in stats["per_shard"].values()
        )
        assert per_shard_requests == stats["totals"]["requests"]

    def test_stats_report_ring_balance(self, harness):
        h = harness(3)
        stats = h.router.stats_document()
        ring = stats["ring"]
        assert ring["vnodes"] >= 1
        assert ring["excluded"] == []
        assert set(ring["balance"]) == {"0", "1", "2"}
        assert sum(ring["balance"].values()) == 512

    def test_ring_balance_excludes_marked_down_shards(self, harness):
        # The balance diagnostic must use the same exclusion the forwarding
        # path uses, so a degraded fleet reports the distribution it is
        # actually serving.
        h = harness(2, revive_after_s=60.0)
        seed = next(
            s for s in range(100) if h.router.shard_for(make_spec(seed=s).cache_key()) == "0"
        )
        h.stop_shard(0)
        status, _, _ = h.router.handle_run(run_doc(seed=seed))
        assert status == 200
        ring = h.router.stats_document()["ring"]
        assert ring["excluded"] == ["0"]
        assert set(ring["balance"]) == {"1"}
        assert sum(ring["balance"].values()) == 512

    def test_drain_refuses_new_work(self, harness):
        h = harness(1)
        assert h.router.drain(timeout_s=5) is True
        status, out, retry_after = h.router.handle_run(run_doc(seed=0))
        assert status == 503 and out["error"] == "draining"
        assert retry_after is not None
        status, out, _ = h.router.handle_batch(
            {"schema": SERVICE_SCHEMA, "requests": [run_doc(seed=0)]}
        )
        assert status == 503 and out["error"] == "draining"


class TestRouterHttpFront:
    """The router behind real HTTP: existing clients can't tell it apart."""

    def test_service_client_speaks_to_a_router(self, harness):
        h = harness(2)
        front = ReproRouter(h.router, port=0)
        front.start()
        try:
            host, port = front.address
            client = ServiceClient(host, port)
            doc = client.run(make_spec(seed=5))
            assert doc["ok"] and doc["trace"] == "fake-trace-5\n"
            health = client.health()
            assert health["role"] == "router" and health["ok"]
            stats = client.stats()
            assert stats["router"]["routed"] == 1
            batch = client.batch([RunRequest(spec=make_spec(seed=s)) for s in range(4)])
            assert all(d["ok"] for d in batch)
        finally:
            front.shutdown(drain_timeout_s=5)
            front.wait_closed(5)

    def test_client_retries_unavailable_and_eventually_fails(self, harness):
        h = harness(1, retries=0, revive_after_s=60.0)
        front = ReproRouter(h.router, port=0)
        front.start()
        try:
            host, port = front.address
            h.stop_shard(0)
            client = ServiceClient(host, port, max_retries=1, backoff_s=0.01)
            with pytest.raises(ServiceUnavailable) as excinfo:
                client.run(make_spec(seed=0))
            assert excinfo.value.retriable
        finally:
            front.shutdown(drain_timeout_s=5)
            front.wait_closed(5)

    def test_unknown_paths_are_400(self, harness):
        h = harness(1)
        front = ReproRouter(h.router, port=0)
        front.start()
        try:
            host, port = front.address
            status, doc = http_json_request(host, port, "GET", "/v1/nope")
            assert status == 400 and doc["error"] == "bad_request"
            status, doc = http_json_request(host, port, "POST", "/v1/nope", {})
            assert status == 400
        finally:
            front.shutdown(drain_timeout_s=5)
            front.wait_closed(5)


class TestValidation:
    def test_constructor_rejects_bad_config(self):
        addr = ShardAddress("0", "127.0.0.1", 1)
        with pytest.raises(ValueError):
            RouterService([])
        with pytest.raises(ValueError):
            RouterService([addr], max_inflight=0)
        with pytest.raises(ValueError):
            RouterService([addr], retries=-1)
        with pytest.raises(ValueError):
            RouterService([addr, ShardAddress("0", "127.0.0.1", 2)])

    def test_overloaded_error_class_is_retriable(self):
        assert ServiceOverloaded("x").retriable
        assert ServiceUnavailable("x").retriable
