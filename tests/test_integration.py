"""End-to-end integration tests crossing every subsystem."""

import numpy as np
import pytest

from repro import (
    MachineBackend,
    OmpSsScheduler,
    QuarkScheduler,
    StarPUScheduler,
    TiledMatrix,
    calibrate,
    cholesky_program,
    get_machine,
    lu_program,
    qr_program,
    simulate,
    validate,
)
from repro.algorithms import random_spd
from repro.core.threaded import ThreadedRuntime
from repro.dag import build_dag, makespan_lower_bound
from repro.trace import compare_traces, load_trace, save_trace


class TestFullPipeline:
    """calibrate -> simulate -> validate across schedulers and algorithms."""

    @pytest.mark.parametrize("scheduler_factory", [
        lambda: QuarkScheduler(48),
        lambda: StarPUScheduler(47, policy="prio"),
        lambda: OmpSsScheduler(47),
    ])
    @pytest.mark.parametrize("generator", [cholesky_program, qr_program, lu_program])
    def test_validate_under_each_scheduler_and_algorithm(
        self, scheduler_factory, generator
    ):
        machine = get_machine("magny_cours_48")
        models, _ = calibrate(
            generator(10, 180), scheduler_factory(), machine, seed=0
        )
        result = validate(
            generator(12, 180),
            scheduler_factory(),
            machine,
            models,
            warmup_penalty=machine.warmup_penalty,
        )
        # Calibration scale ~= validation scale: prediction within 10 %.
        assert result.error_percent < 10.0
        assert result.comparison.order_similarity > 0.8

    def test_simulated_trace_survives_disk_roundtrip(self, tmp_path, calibrated_qr_models):
        trace = simulate(qr_program(6, 180), QuarkScheduler(48), calibrated_qr_models)
        path = save_trace(trace, tmp_path / "sim.txt")
        back = load_trace(path)
        assert compare_traces(trace, back).makespan_error == 0.0

    def test_makespan_never_beats_dag_lower_bound(self, calibrated_qr_models):
        prog = qr_program(8, 180)
        trace = simulate(prog, QuarkScheduler(48), calibrated_qr_models, seed=0)
        weights = {
            k: calibrated_qr_models.mean_duration(k) for k in calibrated_qr_models.kernels()
        }
        bound = makespan_lower_bound(build_dag(prog), 48, weights)
        # Stochastic durations scatter around the means; allow 10 % slack.
        assert trace.makespan > 0.9 * bound

    def test_machine_trace_utilisation_sane(self):
        machine = get_machine("magny_cours_48")
        trace = QuarkScheduler(48).run(
            qr_program(14, 180), MachineBackend(machine), seed=0
        )
        trace.validate()
        assert 0.3 < trace.utilization() <= 1.0

    def test_threaded_execute_agrees_with_simulated_structure(self):
        """Execute a real factorization, calibrate from it, simulate it, and
        check the simulated trace has the same tasks and similar makespan."""
        from repro.kernels.timing import KernelModelSet
        from repro.machine.calibration import collect_samples

        nt, nb = 6, 32
        a = random_spd(nt * nb, np.random.default_rng(0))
        tm = TiledMatrix(a.copy(), nb)
        prog = cholesky_program(nt, nb)
        real = ThreadedRuntime(4, mode="execute").run(prog, store=tm.store, seed=0)
        samples = collect_samples(real, drop_first_per_worker=True)
        models = KernelModelSet.from_samples(samples, family="empirical", trim_warmup=False)
        sim = ThreadedRuntime(4, mode="simulate").run(
            cholesky_program(nt, nb), models=models, seed=1
        )
        assert len(sim) == len(real)
        assert sorted(e.task_id for e in sim.events) == sorted(
            e.task_id for e in real.events
        )


class TestCrossSchedulerProperties:
    def test_all_schedulers_same_task_set_different_schedules(self):
        machine = get_machine("magny_cours_48")
        def prog_factory():
            return cholesky_program(10, 180)

        traces = {}
        for name, sched in [
            ("quark", QuarkScheduler(48)),
            ("starpu", StarPUScheduler(47, policy="prio")),
            ("ompss", OmpSsScheduler(47)),
        ]:
            traces[name] = sched.run(prog_factory(), MachineBackend(machine), seed=1)
        spans = {n: t.makespan for n, t in traces.items()}
        # Same work, each scheduler valid, but the schedules differ.
        for t in traces.values():
            t.validate()
            assert len(t) == len(prog_factory())
        assert len({round(s, 9) for s in spans.values()}) > 1

    def test_simulator_tracks_scheduler_ranking(self):
        """The autotuning property: simulation preserves which scheduler
        configuration is faster (QUARK window 8 vs 1024)."""
        machine = get_machine("magny_cours_48")
        models, _ = calibrate(
            cholesky_program(10, 180), QuarkScheduler(48), machine, seed=0
        )
        def prog():
            return cholesky_program(12, 180)

        real_small = QuarkScheduler(48, window=8).run(
            prog(), MachineBackend(machine), seed=1
        )
        real_big = QuarkScheduler(48, window=1024).run(
            prog(), MachineBackend(machine), seed=1
        )
        sim_small = simulate(prog(), QuarkScheduler(48, window=8), models, seed=2)
        sim_big = simulate(prog(), QuarkScheduler(48, window=1024), models, seed=2)
        assert real_small.makespan > real_big.makespan
        assert sim_small.makespan > sim_big.makespan
