"""Numeric correctness of the structured tile QR kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.qr import build_q, geqrt, householder, ormqr, tsmqr, tsqrt


def _rand(n, seed=0):
    return np.random.default_rng(seed).standard_normal((n, n))


class TestHouseholder:
    def test_annihilates_tail(self):
        x = np.array([3.0, 4.0, 0.0, 12.0])
        v, tau, beta = householder(x)
        h = np.eye(4) - tau * np.outer(v, v)
        y = h @ x
        assert y[0] == pytest.approx(beta)
        assert np.allclose(y[1:], 0.0, atol=1e-12)

    def test_norm_preserved(self):
        x = np.array([1.0, 2.0, 2.0])
        _, _, beta = householder(x)
        assert abs(beta) == pytest.approx(np.linalg.norm(x))

    def test_reflector_is_orthogonal(self):
        x = np.array([1.0, -2.0, 0.5])
        v, tau, _ = householder(x)
        h = np.eye(3) - tau * np.outer(v, v)
        assert np.allclose(h @ h.T, np.eye(3), atol=1e-12)

    def test_zero_tail_gives_identity(self):
        v, tau, beta = householder(np.array([5.0, 0.0, 0.0]))
        assert tau == 0.0 and beta == 5.0

    def test_unit_leading_element(self):
        v, _, _ = householder(np.array([2.0, 1.0]))
        assert v[0] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            householder(np.array([]))


class TestGeqrt:
    def test_q_is_orthogonal(self):
        n = 8
        a = _rand(n, 1)
        t = np.zeros((n, n))
        geqrt(a, t)
        q = build_q(a, t)
        assert np.allclose(q.T @ q, np.eye(n), atol=1e-10)

    def test_a_equals_qr(self):
        n = 8
        a0 = _rand(n, 2)
        a = a0.copy()
        t = np.zeros((n, n))
        geqrt(a, t)
        q = build_q(a, t)
        r = np.triu(a)
        assert np.allclose(q @ r, a0, atol=1e-10)

    def test_r_diagonal_magnitude_matches_numpy(self):
        n = 6
        a0 = _rand(n, 3)
        a = a0.copy()
        geqrt(a, np.zeros((n, n)))
        _, r_ref = np.linalg.qr(a0)
        assert np.allclose(np.abs(np.diag(a)), np.abs(np.diag(r_ref)), atol=1e-10)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            geqrt(np.zeros((4, 4)), np.zeros((3, 3)))


class TestOrmqr:
    def test_applies_qt(self):
        n = 7
        a0, c0 = _rand(n, 4), _rand(n, 5)
        a, t = a0.copy(), np.zeros((n, n))
        geqrt(a, t)
        q = build_q(a, t)
        c = c0.copy()
        ormqr(a, t, c)
        assert np.allclose(c, q.T @ c0, atol=1e-10)

    def test_identity_on_q_columns(self):
        # Q^T Q = I, so applying ormqr to Q itself gives the identity.
        n = 5
        a, t = _rand(n, 6), np.zeros((n, n))
        geqrt(a, t)
        q = build_q(a, t)
        c = q.copy()
        ormqr(a, t, c)
        assert np.allclose(c, np.eye(n), atol=1e-10)


class TestTsqrt:
    def test_stacked_factorization(self):
        n = 6
        a0 = _rand(n, 7)
        # First factor the top tile, then stack a second tile under its R.
        top = a0.copy()
        t_top = np.zeros((n, n))
        geqrt(top, t_top)
        r = np.triu(top).copy()
        r0 = r.copy()
        a2 = _rand(n, 8)
        a2_0 = a2.copy()
        t = np.zeros((n, n))
        tsqrt(r, a2, t)
        # The 2n x n stack [r0; a2_0] must equal Q [r_new; 0].
        v = np.vstack([np.eye(n), a2])  # structured reflectors
        q = np.eye(2 * n) - v @ t @ v.T
        stacked = np.vstack([r0, a2_0])
        reconstructed = q @ np.vstack([np.triu(r), np.zeros((n, n))])
        assert np.allclose(reconstructed, stacked, atol=1e-10)

    def test_q_orthogonal(self):
        n = 5
        r = np.triu(_rand(n, 9))
        a2 = _rand(n, 10)
        t = np.zeros((n, n))
        tsqrt(r, a2, t)
        v = np.vstack([np.eye(n), a2])
        q = np.eye(2 * n) - v @ t @ v.T
        assert np.allclose(q.T @ q, np.eye(2 * n), atol=1e-10)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            tsqrt(np.zeros((4, 4)), np.zeros((4, 4)), np.zeros((5, 5)))


class TestTsmqr:
    def test_applies_stacked_qt(self):
        n = 5
        r = np.triu(_rand(n, 11))
        v2_src = _rand(n, 12)
        t = np.zeros((n, n))
        tsqrt(r, v2_src, t)  # v2_src now holds V2
        a1_0, a2_0 = _rand(n, 13), _rand(n, 14)
        a1, a2 = a1_0.copy(), a2_0.copy()
        tsmqr(a1, a2, v2_src, t)
        v = np.vstack([np.eye(n), v2_src])
        q = np.eye(2 * n) - v @ t @ v.T
        expect = q.T @ np.vstack([a1_0, a2_0])
        assert np.allclose(np.vstack([a1, a2]), expect, atol=1e-10)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            tsmqr(np.zeros((4, 4)), np.zeros((4, 4)), np.zeros((4, 4)), np.zeros((3, 3)))


class TestPropertyBased:
    @given(n=st.integers(min_value=1, max_value=10), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_geqrt_qr_identity(self, n, seed):
        a0 = np.random.default_rng(seed).standard_normal((n, n))
        a, t = a0.copy(), np.zeros((n, n))
        geqrt(a, t)
        q = build_q(a, t)
        assert np.allclose(q @ np.triu(a), a0, atol=1e-8)
        assert np.allclose(q.T @ q, np.eye(n), atol=1e-8)

    @given(n=st.integers(min_value=1, max_value=8), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_tsqrt_preserves_gram_matrix(self, n, seed):
        # Orthogonal transformation: R_new^T R_new == R^T R + A2^T A2.
        rng = np.random.default_rng(seed)
        r = np.triu(rng.standard_normal((n, n)))
        a2 = rng.standard_normal((n, n))
        gram = r.T @ r + a2.T @ a2
        t = np.zeros((n, n))
        tsqrt(r, a2, t)
        r_new = np.triu(r)
        assert np.allclose(r_new.T @ r_new, gram, atol=1e-8)
