"""Unit tests for TiledMatrix / TileStore and the matrix generators."""

import numpy as np
import pytest

from repro.algorithms.tiled_matrix import (
    TiledMatrix,
    TileStore,
    random_diagdom,
    random_general,
    random_spd,
)


class TestTileStore:
    def test_put_get(self):
        store = TileStore()
        tile = np.zeros((4, 4))
        store.put(("A", 0, 0), tile)
        assert store[("A", 0, 0)] is tile
        assert ("A", 0, 0) in store
        assert len(store) == 1

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            TileStore().put(("A",), np.zeros(4))

    def test_ensure_creates_zero_tile(self):
        store = TileStore()
        tile = store.ensure(("T", 1, 1), (3, 3))
        assert tile.shape == (3, 3)
        assert np.all(tile == 0.0)

    def test_ensure_returns_existing(self):
        store = TileStore()
        a = store.ensure(("T", 0, 0), (2, 2))
        a[0, 0] = 7.0
        b = store.ensure(("T", 0, 0), (2, 2))
        assert b is a

    def test_keys_iteration(self):
        store = TileStore()
        store.put(("A", 0, 0), np.zeros((2, 2)))
        store.put(("A", 0, 1), np.zeros((2, 2)))
        assert set(store.keys()) == {("A", 0, 0), ("A", 0, 1)}


class TestTiledMatrix:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        dense = rng.standard_normal((12, 12))
        tm = TiledMatrix(dense, 4)
        assert tm.nt == 3
        assert np.array_equal(tm.to_dense(), dense)

    def test_tiles_are_copies(self):
        dense = np.ones((8, 8))
        tm = TiledMatrix(dense, 4)
        dense[0, 0] = 99.0
        assert tm.tile(0, 0)[0, 0] == 1.0

    def test_tile_contents(self):
        dense = np.arange(16, dtype=float).reshape(4, 4)
        tm = TiledMatrix(dense, 2)
        assert np.array_equal(tm.tile(1, 0), dense[2:, :2])

    def test_tile_out_of_range(self):
        tm = TiledMatrix(np.zeros((4, 4)), 2)
        with pytest.raises(IndexError):
            tm.tile(2, 0)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            TiledMatrix(np.zeros((4, 6)), 2)

    def test_indivisible_nb_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            TiledMatrix(np.zeros((10, 10)), 3)

    def test_lower_tiles_dense_zeroes_upper_tiles(self):
        tm = TiledMatrix(np.ones((6, 6)), 2)
        lower = tm.lower_tiles_dense()
        assert np.all(lower[:2, 2:] == 0.0)
        assert np.all(lower[2:4, 4:] == 0.0)
        assert np.all(lower[2:, :2] == 1.0)

    def test_store_keys_match_name(self):
        tm = TiledMatrix(np.zeros((4, 4)), 2, name="B")
        assert ("B", 1, 1) in tm.store


class TestGenerators:
    def test_spd_is_spd(self):
        a = random_spd(20, np.random.default_rng(0))
        assert np.allclose(a, a.T)
        assert np.all(np.linalg.eigvalsh(a) > 0)

    def test_diagdom_is_dominant(self):
        a = random_diagdom(20, np.random.default_rng(1))
        for i in range(20):
            assert abs(a[i, i]) > np.sum(np.abs(a[i])) - abs(a[i, i]) - 20

    def test_general_shape(self):
        assert random_general(7, np.random.default_rng(2)).shape == (7, 7)

    def test_generators_seedable(self):
        a = random_spd(5, np.random.default_rng(3))
        b = random_spd(5, np.random.default_rng(3))
        assert np.array_equal(a, b)
