"""Tests for the parallel sweep runner: specs, cache, metrics, determinism."""

import json

import pytest

from repro.cli import main
from repro.core.metrics import METRICS_SCHEMA, RunMetrics
from repro.core.threaded import ThreadedRuntime
from repro.algorithms import cholesky_program
from repro.runner import (
    ProgramSpec,
    ResultCache,
    RunSpec,
    SchedulerSpec,
    execute_spec,
    partition_cache_dir,
    run_cached,
    sweep,
)


def _spec(nt=4, seed=0, mode="real", scheduler="quark", **kwargs):
    n_workers = 48 if scheduler == "quark" else 47
    sched_kwargs = {"policy": "prio"} if scheduler == "starpu" else {}
    return RunSpec(
        program=ProgramSpec("cholesky", nt, 100),
        scheduler=SchedulerSpec(scheduler, n_workers, **sched_kwargs),
        machine="magny_cours_48",
        seed=seed,
        mode=mode,
        **({"cal_nt": 4} if mode == "simulated" else {}),
        **kwargs,
    )


class TestSpecs:
    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            ProgramSpec("lu_pp", 4, 100)

    def test_cache_key_stable(self):
        assert _spec().cache_key() == _spec().cache_key()

    def test_cache_key_sensitive_to_every_param(self):
        base = _spec().cache_key()
        assert _spec(nt=5).cache_key() != base
        assert _spec(seed=1).cache_key() != base
        assert _spec(scheduler="starpu").cache_key() != base
        assert _spec(mode="simulated").cache_key() != base

    def test_real_key_ignores_calibration_fields(self):
        # Calibration settings do not affect a real run, so they must not
        # fragment the cache.
        a = _spec(mode="real")
        b = RunSpec(
            program=a.program, scheduler=a.scheduler, machine=a.machine,
            seed=a.seed, mode="real", cal_nt=8, cal_seed=7, family="gamma",
        )
        assert a.cache_key() == b.cache_key()

    def test_calibration_spec_is_real(self):
        cal = _spec(mode="simulated").calibration_spec()
        assert cal.mode == "real"
        assert cal.program.nt == 4

    def test_threaded_runtime_requires_simulated(self):
        with pytest.raises(ValueError, match="simulated"):
            _spec(mode="real", runtime="threaded")

    def test_threaded_spec_validates_guard_and_policy(self):
        with pytest.raises(ValueError, match="race guard"):
            _spec(mode="simulated", runtime="threaded", guard="mutex")
        with pytest.raises(ValueError, match="on_stall"):
            _spec(mode="simulated", runtime="threaded", on_stall="retry")
        with pytest.raises(ValueError, match="stall_timeout"):
            _spec(mode="simulated", runtime="threaded", stall_timeout=-1.0)
        with pytest.raises(ValueError, match="runtime"):
            _spec(runtime="hybrid")

    def test_threaded_key_includes_guard_but_not_stall_policy(self):
        base = _spec(mode="simulated", runtime="threaded")
        assert base.cache_key() != _spec(mode="simulated").cache_key()
        assert base.cache_key() != _spec(
            mode="simulated", runtime="threaded", guard="none"
        ).cache_key()
        # The watchdog never alters a successful trace: inert for identity.
        assert base.cache_key() == _spec(
            mode="simulated", runtime="threaded",
            stall_timeout=5.0, on_stall="recover",
        ).cache_key()

    def test_engine_key_ignores_guard(self):
        # The race guard only exists on the threaded runtime.
        assert _spec().cache_key() == _spec(guard="none").cache_key()

    def test_stall_policy_helper(self):
        spec = _spec(
            mode="simulated", runtime="threaded",
            stall_timeout=7.5, on_stall="recover",
        )
        policy = spec.stall_policy()
        assert policy.timeout_s == 7.5
        assert policy.on_stall == "recover"


class TestPartitionNaming:
    def test_int_and_str_ids_map_to_one_partition(self, tmp_path):
        # Regression: `5` used to format as shard-05 but `"5"` as shard-5,
        # silently splitting one logical shard into two disjoint partitions.
        assert partition_cache_dir(tmp_path, 5) == partition_cache_dir(tmp_path, "5")
        assert partition_cache_dir(tmp_path, 5).name == "shard-05"
        assert partition_cache_dir(tmp_path, "05") == partition_cache_dir(tmp_path, 5)

    def test_wide_ids_agree_without_truncation(self, tmp_path):
        assert partition_cache_dir(tmp_path, 123) == partition_cache_dir(tmp_path, "123")
        assert partition_cache_dir(tmp_path, 123).name == "shard-123"

    def test_non_numeric_string_ids_used_verbatim(self, tmp_path):
        assert partition_cache_dir(tmp_path, "canary").name == "shard-canary"

    def test_invalid_ids_rejected(self, tmp_path):
        with pytest.raises(TypeError, match="bool"):
            partition_cache_dir(tmp_path, True)
        with pytest.raises(ValueError, match="non-negative"):
            partition_cache_dir(tmp_path, -1)


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        assert spec.cache_key() not in cache
        run_cached(spec, cache)
        run_cached(spec, cache)
        assert cache.hits == 1
        assert cache.misses == 1
        assert len(cache) >= 1

    def test_param_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_cached(_spec(), cache)
        run_cached(_spec(seed=1), cache)
        assert cache.misses == 2
        assert cache.hits == 0

    def test_cached_trace_identical_to_fresh(self, tmp_path):
        from repro.trace.textio import dumps_trace

        spec = _spec()
        fresh, _ = execute_spec(spec)
        cached = run_cached(spec, ResultCache(tmp_path)).load_trace()
        assert dumps_trace(cached) == dumps_trace(fresh)

    def test_entry_files_on_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_cached(_spec(), cache)
        assert result.trace_path is not None
        entry = cache.get(_spec().cache_key())
        assert entry.trace_path.exists()
        assert entry.metrics_path.exists()
        spec_dict = entry.load_spec_dict()
        assert spec_dict["program"]["algorithm"] == "cholesky"
        payload = json.loads(entry.metrics_path.read_text())
        assert payload["schema"] == METRICS_SCHEMA

    def test_partial_entry_recomputed_and_replaced(self, tmp_path):
        # A stale entry directory missing its trace (interrupted writer,
        # manual deletion) must be treated as a miss and overwritten.
        cache = ResultCache(tmp_path)
        entry = run_cached(_spec(), cache)
        ResultCache(tmp_path).get(_spec().cache_key()).trace_path.unlink()
        healed = run_cached(_spec(), ResultCache(tmp_path))
        assert not healed.cached
        assert healed.trace_dump() == entry.trace_dump()
        assert _spec().cache_key() in ResultCache(tmp_path)

    def test_truncated_entry_invisible_to_entries_and_len(self, tmp_path):
        # Regression: an entry missing its metrics file counts as a miss in
        # get(), so entries()/len() must not report it either — they used
        # to require only the trace file, making len(cache) disagree with
        # what lookups could see and handing out entries whose
        # load_metrics() would blow up.
        cache = ResultCache(tmp_path)
        run_cached(_spec(), cache)
        run_cached(_spec(seed=1), cache)
        assert len(cache) == 2

        victim = cache.get(_spec().cache_key())
        victim.metrics_path.unlink()  # hand-truncated entry: trace only

        fresh = ResultCache(tmp_path)
        assert fresh.get(_spec().cache_key()) is None  # miss, as before
        assert len(fresh) == 1
        listed = list(fresh.entries())
        assert [e.key for e in listed] == [_spec(seed=1).cache_key()]
        for entry in listed:
            entry.load_metrics()  # every listed entry is fully loadable

    def test_clear_removes_partial_entries_too(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_cached(_spec(), cache)
        run_cached(_spec(seed=1), cache)
        cache.get(_spec().cache_key()).metrics_path.unlink()
        assert len(cache) == 1
        assert cache.clear() == 2  # the partial directory is swept as well
        assert len(list(ResultCache(tmp_path)._entry_dirs())) == 0

    def test_simulated_run_caches_calibration(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_cached(_spec(mode="simulated", seed=3), cache)
        # calibration (real) run + simulated run
        assert cache.misses == 2
        # A second simulated spec sharing cal settings hits the calibration.
        cache2 = ResultCache(tmp_path)
        run_cached(_spec(mode="simulated", seed=4), cache2)
        assert cache2.hits == 1  # the shared calibration run
        assert cache2.misses == 1


class TestMetrics:
    def test_engine_metrics_populated(self):
        _, metrics = execute_spec(_spec())
        assert metrics.events_processed > 0
        assert metrics.heap_pushes == metrics.heap_pops
        assert metrics.tasks_executed == metrics.n_tasks == 20  # nt=4 Cholesky
        assert metrics.peak_heap_depth > 0
        assert metrics.makespan > 0
        assert metrics.wall_time_s > 0

    def test_metrics_json_roundtrip(self, tmp_path):
        _, metrics = execute_spec(_spec())
        path = metrics.write_json(tmp_path / "m.json")
        back = RunMetrics.read_json(path)
        assert back.to_dict() == metrics.to_dict()

    def test_from_dict_rejects_foreign_schema_tag(self):
        # Feeding another artifact kind (here a sweep document) used to
        # produce a silently-default RunMetrics; now it is an error that
        # names both tags.
        with pytest.raises(ValueError, match=r"repro\.sweep/v1.*repro\.run_metrics/v1"):
            RunMetrics.from_dict({"schema": "repro.sweep/v1", "makespan": 1.0})

    def test_from_dict_rejects_missing_schema_tag(self):
        with pytest.raises(ValueError, match="schema tag None"):
            RunMetrics.from_dict({"makespan": 1.0})

    def test_from_dict_keeps_unknown_fields_with_warning(self):
        # Forward compat: a document written by a newer version must not
        # silently lose its extra fields on the way through this parser.
        doc = RunMetrics(makespan=2.5).to_dict()
        doc["added_in_v2"] = "future"
        with pytest.warns(UserWarning, match="added_in_v2"):
            back = RunMetrics.from_dict(doc)
        assert back.makespan == 2.5
        assert back.extra["unknown_fields"] == {"added_in_v2": "future"}

    def test_from_dict_does_not_mutate_caller_document(self):
        doc = RunMetrics(extra={"a": 1}).to_dict()
        doc["new_key"] = 7
        with pytest.warns(UserWarning):
            back = RunMetrics.from_dict(doc)
        assert doc["extra"] == {"a": 1}
        assert back.extra["a"] == 1
        assert back.extra["unknown_fields"] == {"new_key": 7}

    def test_summary_includes_teq_and_recovery_counters_when_nonzero(self):
        m = RunMetrics(teq_inserts=5, teq_pops=5, peak_teq_depth=3, stall_recoveries=2)
        line = m.summary()
        assert "teq 5i/5p peak 3" in line
        assert "recovered 2 stalls" in line

    def test_summary_omits_threaded_counters_for_engine_runs(self):
        line = RunMetrics(tasks_executed=4).summary()
        assert "teq" not in line
        assert "recovered" not in line

    def test_teq_metrics_via_threaded_runtime(self):
        metrics = RunMetrics()
        runtime = ThreadedRuntime(2, mode="simulate", guard="quiesce")
        from repro.kernels.timing import KernelModelSet
        from repro.machine.calibration import collect_samples

        trace, cal_metrics = execute_spec(_spec())
        models = KernelModelSet.from_samples(collect_samples(trace))
        runtime.run(cholesky_program(4, 100), models=models, seed=1, metrics=metrics)
        assert metrics.teq_inserts > 0
        assert metrics.teq_pops == metrics.teq_inserts
        assert metrics.peak_teq_depth >= 1


class TestSweep:
    def test_serial_parallel_traces_byte_identical(self, tmp_path):
        specs = [_spec(seed=s, scheduler=n)
                 for s in (0, 1) for n in ("quark", "starpu", "ompss")]
        serial = sweep(specs, jobs=1, cache=tmp_path / "a")
        parallel = sweep(specs, jobs=4, cache=tmp_path / "b")
        for rs, rp in zip(serial.results, parallel.results):
            assert rs.trace_dump() == rp.trace_dump()

    def test_repeat_sweep_reports_cache_hits(self, tmp_path):
        # Acceptance: an N-point grid rerun reports >= N-1 hits.
        specs = [_spec(nt=nt, seed=nt) for nt in (3, 4, 5, 6)]
        cold = sweep(specs, jobs=2, cache=tmp_path)
        assert cold.cache_hits == 0 and cold.cache_misses == len(specs)
        warm = sweep(specs, jobs=2, cache=tmp_path)
        assert warm.cache_hits >= len(specs) - 1
        assert warm.cache_misses == 0

    def test_results_in_spec_order(self, tmp_path):
        specs = [_spec(nt=nt) for nt in (6, 3, 5)]
        outcome = sweep(specs, jobs=3, cache=tmp_path)
        assert [r.spec.program.nt for r in outcome.results] == [6, 3, 5]

    def test_sim_specs_share_one_calibration_entry(self, tmp_path):
        specs = [_spec(mode="simulated", seed=s) for s in (10, 11)]
        sweep(specs, jobs=1, cache=tmp_path)
        # 2 simulated entries + ONE shared calibration entry, not two.
        assert len(ResultCache(tmp_path)) == 3

    def test_ephemeral_cache_traces_survive_cleanup(self):
        specs = [_spec(mode="simulated", seed=s) for s in (10, 11)]
        outcome = sweep(specs, jobs=1)  # no cache given
        assert outcome.cache_misses == len(specs)
        for r in outcome.results:
            assert r.trace_dump()  # pulled in-memory before the tmp dir died
            assert r.load_trace().makespan > 0

    def test_metrics_document(self, tmp_path):
        outcome = sweep([_spec()], cache=tmp_path / "c")
        path = outcome.write_metrics(tmp_path / "sweep.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.sweep_metrics/v1"
        assert len(doc["runs"]) == 1
        run = doc["runs"][0]
        assert run["cached"] is False
        assert run["metrics"]["schema"] == METRICS_SCHEMA
        assert run["spec"]["mode"] == "real"


class TestCliSweep:
    def test_sweep_command_cold_then_warm(self, tmp_path, capsys):
        argv = ["sweep", "--algorithm", "cholesky", "--nts", "4", "--nb", "100",
                "--schedulers", "quark", "--seeds", "0", "--mode", "real",
                "--cache-dir", str(tmp_path / "cache"),
                "--metrics-out", str(tmp_path / "m.json")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 hits, 1 misses" in out
        assert (tmp_path / "m.json").exists()
        assert main(argv) == 0
        assert "1 hits, 0 misses" in capsys.readouterr().out

    def test_sweep_validate_mode_table(self, tmp_path, capsys):
        assert main(
            ["sweep", "--nts", "4", "--nb", "100", "--seeds", "0",
             "--cal-nt", "4", "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "real GF/s" in out
        assert "sim GF/s" in out

    def test_sweep_rejects_bad_jobs(self, capsys):
        assert main(["sweep", "--jobs", "0", "--no-cache"]) == 2


class TestObservedRunsAndCache:
    """Pin the probe/cache interplay: an observed run must bypass cache
    *reads* (a cached trace carries no probe stream to replay) while still
    *publishing* its result, so the artifacts and the cache stay in sync and
    the next unobserved run hits."""

    def test_observed_run_bypasses_read_but_still_publishes(self, tmp_path):
        from repro.runner import run_observed

        cache = ResultCache(tmp_path / "cache")
        spec = _spec(seed=21)
        observed = run_observed(spec, cache, tmp_path / "probes")
        assert observed.cached is False
        artifacts = list((tmp_path / "probes").iterdir())
        assert artifacts, "observed run exported no timeline artifacts"
        # The observed run published: the plain rerun is a hit with the
        # exact same bytes.
        warm = run_cached(spec, cache)
        assert warm.cached is True
        assert warm.trace_dump() == observed.trace_dump()

    def test_observed_run_executes_even_when_cache_is_warm(self, tmp_path):
        from repro.runner import run_observed

        cache = ResultCache(tmp_path / "cache")
        spec = _spec(seed=22)
        run_cached(spec, cache)  # warm the key first
        observed = run_observed(spec, cache, tmp_path / "probes")
        assert observed.cached is False  # probes force execution
        assert list((tmp_path / "probes").iterdir())
        # Purity: re-executing over a warm key reproduced the same bytes.
        assert observed.trace_dump() == run_cached(spec, cache).trace_dump()

    def test_observed_sweep_publishes_for_next_unobserved_sweep(self, tmp_path):
        specs = [_spec(seed=s) for s in (31, 32)]
        probed = sweep(specs, jobs=1, cache=tmp_path / "cache",
                       probe_dir=tmp_path / "probes")
        assert probed.cache_hits == 0 and probed.cache_misses == 2
        # Artifact families are named by cache-key prefix: one per spec.
        prefixes = {p.name.split(".")[0] for p in (tmp_path / "probes").iterdir()}
        assert prefixes == {r.key[:16] for r in probed.results}
        unobserved = sweep(specs, jobs=1, cache=tmp_path / "cache")
        assert unobserved.cache_hits == 2 and unobserved.cache_misses == 0
        for ro, ru in zip(probed.results, unobserved.results):
            assert ro.trace_dump() == ru.trace_dump()

    def test_sweep_cli_probe_dir_then_warm_cache(self, tmp_path, capsys):
        base = ["sweep", "--nts", "4", "--nb", "100", "--seeds", "3",
                "--mode", "real", "--cache-dir", str(tmp_path / "cache")]
        assert main(base + ["--probe-dir", str(tmp_path / "probes")]) == 0
        assert "0 hits, 1 misses" in capsys.readouterr().out
        assert list((tmp_path / "probes").iterdir())
        # The observed sweep published: the unobserved rerun is all hits.
        assert main(base) == 0
        assert "1 hits, 0 misses" in capsys.readouterr().out
