"""Tests for the simulation clock and the Task Execution Queue."""

import threading
import time

import pytest

from repro.core.clock import SimClock
from repro.core.teq import TaskExecutionQueue


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now() == 5.0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance_to(3.0) == 3.0
        assert clock.now() == 3.0

    def test_monotone_ignores_past(self):
        clock = SimClock()
        clock.advance_to(3.0)
        assert clock.advance_to(1.0) == 3.0

    def test_reset(self):
        clock = SimClock()
        clock.advance_to(9.0)
        clock.reset()
        assert clock.now() == 0.0

    def test_thread_safe_advances(self):
        clock = SimClock()

        def bump(t):
            for i in range(100):
                clock.advance_to(t + i * 1e-6)

        threads = [threading.Thread(target=bump, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert clock.now() == pytest.approx(3.0 + 99e-6)


class TestTaskExecutionQueue:
    def test_front_is_soonest_completion(self):
        teq = TaskExecutionQueue()
        teq.insert(1, 5.0)
        teq.insert(2, 3.0)
        teq.insert(3, 7.0)
        assert teq.front() == 2
        assert teq.front_end_time() == 3.0

    def test_pop_front_returns_end_time(self):
        teq = TaskExecutionQueue()
        teq.insert(1, 2.5)
        assert teq.pop_front(1) == 2.5
        assert teq.front() is None

    def test_pop_non_front_rejected(self):
        teq = TaskExecutionQueue()
        teq.insert(1, 1.0)
        teq.insert(2, 2.0)
        with pytest.raises(RuntimeError, match="not at the front"):
            teq.pop_front(2)

    def test_pop_empty_rejected(self):
        with pytest.raises(RuntimeError):
            TaskExecutionQueue().pop_front(0)

    def test_ties_broken_by_insertion_order(self):
        teq = TaskExecutionQueue()
        teq.insert(10, 1.0)
        teq.insert(20, 1.0)
        assert teq.front() == 10

    def test_len(self):
        teq = TaskExecutionQueue()
        teq.insert(1, 1.0)
        teq.insert(2, 2.0)
        assert len(teq) == 2
        teq.pop_front(1)
        assert len(teq) == 1

    def test_wait_until_front_immediate(self):
        teq = TaskExecutionQueue()
        teq.insert(1, 1.0)
        assert teq.wait_until_front(1, timeout=0.1)

    def test_wait_until_front_timeout(self):
        teq = TaskExecutionQueue()
        teq.insert(1, 1.0)
        teq.insert(2, 2.0)
        assert not teq.wait_until_front(2, timeout=0.05)

    def test_wait_with_predicate(self):
        teq = TaskExecutionQueue()
        teq.insert(1, 1.0)
        gate = {"open": False}
        assert not teq.wait_until_front(1, timeout=0.05, predicate=lambda: gate["open"])
        gate["open"] = True
        teq.notify()
        assert teq.wait_until_front(1, timeout=0.5, predicate=lambda: gate["open"])

    def test_wait_unblocks_when_front_pops(self):
        teq = TaskExecutionQueue()
        teq.insert(1, 1.0)
        teq.insert(2, 2.0)
        result = {}

        def waiter():
            result["ok"] = teq.wait_until_front(2, timeout=2.0)

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.02)
        teq.pop_front(1)
        t.join()
        assert result["ok"]

    def test_snapshot_front_first(self):
        teq = TaskExecutionQueue()
        teq.insert(1, 5.0)
        teq.insert(2, 3.0)
        teq.insert(3, 7.0)
        assert teq.snapshot() == [(2, 3.0), (1, 5.0), (3, 7.0)]
        assert teq.front() == 2  # snapshot does not disturb the queue

    def test_escape_ends_wait_for_non_front_task(self):
        # The watchdog's abort hatch: a waiter stuck behind the front must
        # return as soon as escape() flips, without the front ever popping.
        teq = TaskExecutionQueue()
        teq.insert(1, 1.0)
        teq.insert(2, 2.0)
        abort = threading.Event()
        result = {}

        def waiter():
            result["end"] = teq.wait_pop_front(
                2, timeout=5.0, escape=abort.is_set
            )

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.02)
        abort.set()
        teq.notify(force=True)
        t.join(timeout=2.0)
        assert not t.is_alive()
        assert result["end"] is None  # escaped, not popped
        assert len(teq) == 2  # nothing was removed

    def test_force_notify_bypasses_drop_fault(self):
        # With a notify hook that drops every wake-up, an ordinary notify
        # leaves the waiter asleep; notify(force=True) must get through.
        teq = TaskExecutionQueue(notify_fault=lambda: True)
        teq.insert(1, 1.0)
        gate = {"open": False}
        result = {}

        def waiter():
            result["end"] = teq.wait_pop_front(
                1, timeout=5.0, predicate=lambda: gate["open"]
            )

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.02)
        gate["open"] = True
        teq.notify()  # dropped by the fault hook
        t.join(timeout=0.1)
        assert t.is_alive(), "dropped notify must not wake the waiter"
        teq.notify(force=True)
        t.join(timeout=2.0)
        assert not t.is_alive()
        assert result["end"] == 1.0

    def test_wait_pop_front_pops_atomically(self):
        teq = TaskExecutionQueue()
        teq.insert(1, 2.5)
        seen = []
        # before_pop runs with the queue lock held, so it must not call
        # locking TEQ methods; peek at the heap directly.
        end = teq.wait_pop_front(
            1, timeout=0.5, before_pop=lambda: seen.append(len(teq._heap))
        )
        assert end == 2.5
        assert seen == [1], "before_pop runs under the lock, pre-pop"
        assert len(teq) == 0

    def test_wait_pop_front_timeout_leaves_queue_intact(self):
        teq = TaskExecutionQueue()
        teq.insert(1, 1.0)
        teq.insert(2, 2.0)
        assert teq.wait_pop_front(2, timeout=0.05) is None
        assert len(teq) == 2

    def test_completion_order_respects_end_times(self):
        teq = TaskExecutionQueue()
        ends = {1: 3.0, 2: 1.0, 3: 2.0}
        for tid, end in ends.items():
            teq.insert(tid, end)
        popped = []
        while len(teq):
            tid = teq.front()
            popped.append(teq.pop_front(tid))
        assert popped == sorted(ends.values())
