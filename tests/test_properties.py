"""System-level property tests (Hypothesis) across schedulers and backends.

These are the load-bearing invariants of the whole stack, checked on
randomly generated programs, scheduler configurations, and machines:

* every task runs exactly once, on exactly one (gang of) worker(s);
* no dependence is ever violated, under any scheduler/policy/window;
* traces are physically consistent (no per-worker overlap);
* runs are a pure function of the seed;
* the makespan respects the DAG lower bound.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simbackend import SimulationBackend
from repro.core.task import Program
from repro.dag import build_dag, makespan_lower_bound, simple_dag
from repro.kernels.distributions import LognormalModel
from repro.kernels.timing import KernelModelSet
from repro.machine import MachineBackend, get_machine
from repro.schedulers import OmpSsScheduler, QuarkScheduler, StarPUScheduler

KERNELS = ("KA", "KB", "KC")


@st.composite
def random_programs(draw):
    """Random superscalar programs with mixed access modes and widths."""
    n_refs = draw(st.integers(min_value=1, max_value=5))
    n_tasks = draw(st.integers(min_value=1, max_value=25))
    prog = Program("random", meta={"nb": 1})
    refs = [
        prog.registry.alloc(f"r{i}", 4096, key=(f"r{i}",)) for i in range(n_refs)
    ]
    for _ in range(n_tasks):
        n_acc = draw(st.integers(min_value=1, max_value=min(3, n_refs)))
        chosen = draw(
            st.lists(
                st.integers(0, n_refs - 1), min_size=n_acc, max_size=n_acc, unique=True
            )
        )
        accesses = []
        for ri in chosen:
            mode = draw(st.sampled_from(["r", "w", "rw"]))
            accesses.append(
                {"r": refs[ri].read(), "w": refs[ri].write(), "rw": refs[ri].rw()}[mode]
            )
        kernel = draw(st.sampled_from(KERNELS))
        flops = draw(st.floats(min_value=1e3, max_value=1e7))
        spec = prog.add_task(kernel, accesses, flops=flops,
                             priority=draw(st.integers(0, 5)))
        spec.width = draw(st.sampled_from([1, 1, 1, 2]))
    return prog


@st.composite
def random_schedulers(draw):
    n_workers = draw(st.integers(min_value=2, max_value=6))
    window = draw(st.sampled_from([2, 8, 64, 1024]))
    kind = draw(st.sampled_from(["quark", "starpu", "ompss"]))
    if kind == "quark":
        return QuarkScheduler(
            n_workers, window=window, queue=draw(st.sampled_from(["priority", "lifo"]))
        )
    if kind == "starpu":
        return StarPUScheduler(
            n_workers,
            window=window,
            policy=draw(st.sampled_from(["eager", "prio", "ws", "dmda"])),
        )
    return OmpSsScheduler(
        n_workers,
        window=window,
        immediate_successor=draw(st.booleans()),
        queue=draw(st.sampled_from(["fifo", "priority"])),
    )


def _models(seed=0):
    rng = np.random.default_rng(seed)
    return KernelModelSet(
        models={
            k: LognormalModel(mu_log=float(rng.uniform(-9, -7)), sigma_log=0.2)
            for k in KERNELS
        }
    )


class TestSchedulingInvariants:
    @given(prog=random_programs(), sched=random_schedulers(), seed=st.integers(0, 99))
    @settings(max_examples=80, deadline=None)
    def test_every_scheduler_respects_all_invariants(self, prog, sched, seed):
        trace = sched.run(prog, SimulationBackend(_models()), seed=seed)
        # 1. completeness + physical consistency (overlap, duplicates, gangs)
        trace.validate()
        assert sorted(e.task_id for e in trace.events) == list(range(len(prog)))
        # 2. dependences
        starts = {e.task_id: e.start for e in trace.events}
        ends = {e.task_id: e.end for e in trace.events}
        for src, dst in simple_dag(build_dag(prog)).edges():
            assert starts[dst] >= ends[src] - 1e-12
        # 3. widths preserved
        for e in trace.events:
            assert e.width == prog[e.task_id].width

    @given(prog=random_programs(), seed=st.integers(0, 99))
    @settings(max_examples=30, deadline=None)
    def test_runs_are_seed_deterministic(self, prog, seed):
        machine = get_machine("smp_8")
        t1 = QuarkScheduler(4).run(prog, MachineBackend(machine), seed=seed)
        t2 = QuarkScheduler(4).run(prog, MachineBackend(machine), seed=seed)
        assert t1.events == t2.events

    @given(prog=random_programs(), seed=st.integers(0, 99))
    @settings(max_examples=30, deadline=None)
    def test_makespan_respects_dag_lower_bound(self, prog, seed):
        models = _models()
        sched = OmpSsScheduler(4, insert_cost=0.0, dispatch_overhead=0.0)
        trace = sched.run(prog, SimulationBackend(models), seed=seed)
        # Lower bound with the minimum possible duration per kernel: since
        # lognormal draws vary, bound with a tiny epsilon of the mean.
        weights = {k: models.models[k].mean * 0.3 for k in KERNELS}
        bound = makespan_lower_bound(build_dag(prog), 4, weights)
        assert trace.makespan >= bound - 1e-12

    @given(prog=random_programs())
    @settings(max_examples=20, deadline=None)
    def test_window_one_serialises_any_program(self, prog):
        sched = OmpSsScheduler(4, window=1, insert_cost=0.0, dispatch_overhead=0.0)
        trace = sched.run(prog, SimulationBackend(_models()), seed=0)
        # With a single-task window there is never temporal overlap.
        events = sorted(trace.events)
        for a, b in zip(events, events[1:]):
            assert b.start >= a.end - 1e-12

    @given(prog=random_programs(), seed=st.integers(0, 20))
    @settings(max_examples=20, deadline=None)
    def test_machine_backend_invariants(self, prog, seed):
        machine = get_machine("magny_cours_48")
        trace = QuarkScheduler(8).run(prog, MachineBackend(machine), seed=seed)
        trace.validate()
        assert all(e.duration > 0 for e in trace.events)


class TestStaticScheduleProperty:
    @given(prog=random_programs(), workers=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_list_schedule_valid_on_random_programs(self, prog, workers):
        from repro.dag import list_schedule

        if any(t.width > workers for t in prog):
            return  # cannot place the gang; covered by the error-path test
        costs = {k: 1e-3 for k in KERNELS}
        sched = list_schedule(prog, workers, costs)
        sched.trace.validate()
        assert len(sched.trace) == len(prog)
        starts = {e.task_id: e.start for e in sched.trace.events}
        ends = {e.task_id: e.end for e in sched.trace.events}
        for src, dst in simple_dag(build_dag(prog)).edges():
            assert starts[dst] >= ends[src] - 1e-12
