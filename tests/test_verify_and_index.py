"""Tests for trace verification and the experiment registry."""

import importlib
from pathlib import Path

import pytest

from repro.algorithms import cholesky_program
from repro.core.simbackend import SimulationBackend
from repro.core.task import Program
from repro.experiments.index import EXPERIMENTS
from repro.kernels.distributions import ConstantModel
from repro.kernels.timing import KernelModelSet
from repro.schedulers import QuarkScheduler
from repro.trace.events import Trace
from repro.trace.verify import TraceVerificationError, verify_trace

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def _models():
    return KernelModelSet(
        models={k: ConstantModel(1e-3) for k in ("DPOTRF", "DTRSM", "DSYRK", "DGEMM")}
    )


def _legal_run():
    prog = cholesky_program(4, 16)
    trace = QuarkScheduler(4).run(prog, SimulationBackend(_models()), seed=0)
    return prog, trace


class TestVerifyTrace:
    def test_legal_trace_passes(self):
        prog, trace = _legal_run()
        summary = verify_trace(prog, trace)
        assert summary.n_tasks == len(prog)
        assert summary.n_dependences > 0
        assert summary.makespan == trace.makespan

    def test_missing_task_detected(self):
        prog, trace = _legal_run()
        partial = Trace(trace.n_workers)
        for e in trace.events[:-1]:
            partial.add(e)
        with pytest.raises(TraceVerificationError, match="missing"):
            verify_trace(prog, partial)

    def test_duplicate_task_detected(self):
        prog, trace = _legal_run()
        doubled = Trace(trace.n_workers)
        for e in trace.events:
            doubled.add(e)
        doubled.record(0, trace.events[0].task_id, "DPOTRF", 99.0, 100.0)
        with pytest.raises(TraceVerificationError):
            verify_trace(prog, doubled)

    def test_dependence_violation_detected(self):
        prog = Program("chain")
        x = prog.registry.alloc("x", 64)
        prog.add_task("K", [x.rw()])
        prog.add_task("K", [x.rw()])
        bad = Trace(2)
        bad.record(0, 0, "K", 0.0, 1.0)
        bad.record(1, 1, "K", 0.5, 1.5)  # starts before its predecessor ends
        with pytest.raises(TraceVerificationError, match="dependence violated"):
            verify_trace(prog, bad)

    def test_overlap_detected(self):
        prog = Program("two")
        x = prog.registry.alloc("x", 64, key=("x",))
        y = prog.registry.alloc("y", 64, key=("y",))
        prog.add_task("K", [x.write()])
        prog.add_task("K", [y.write()])
        bad = Trace(1)
        bad.record(0, 0, "K", 0.0, 1.0)
        bad.record(0, 1, "K", 0.5, 1.5)  # same worker, overlapping
        with pytest.raises(TraceVerificationError, match="overlapping"):
            verify_trace(prog, bad)

    def test_width_mismatch_detected(self):
        prog = Program("wide")
        x = prog.registry.alloc("x", 64)
        spec = prog.add_task("K", [x.write()])
        spec.width = 2
        bad = Trace(2)
        bad.record(0, 0, "K", 0.0, 1.0, width=1)
        with pytest.raises(TraceVerificationError, match="width"):
            verify_trace(prog, bad)


class TestExperimentRegistry:
    def test_every_bench_file_exists(self):
        for exp in EXPERIMENTS.values():
            assert (BENCH_DIR / exp.bench).exists(), exp

    def test_every_bench_file_is_registered(self):
        registered = {exp.bench for exp in EXPERIMENTS.values()}
        on_disk = {
            p.name
            for p in BENCH_DIR.glob("test_*.py")
        }
        assert on_disk == registered

    def test_driver_paths_resolve(self):
        for exp in EXPERIMENTS.values():
            module_name, attr = exp.driver.rsplit(".", 1)
            module = importlib.import_module(module_name)
            assert hasattr(module, attr), exp.driver

    def test_ids_match_design_doc(self):
        design = (BENCH_DIR.parent / "DESIGN.md").read_text()
        for exp_id in EXPERIMENTS:
            assert exp_id in design, f"{exp_id} not documented in DESIGN.md"
