"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_no_command_parses_then_main_exits_2(self, capsys):
        # The bare invocation is valid at parse time; main() prints usage
        # to stderr and returns 2 instead of tracebacking.
        args = build_parser().parse_args([])
        assert args.command is None
        assert main([]) == 2
        assert "usage: repro" in capsys.readouterr().err

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.algorithm == "cholesky"
        assert args.scheduler == "quark"
        assert args.workers == 48


class TestStream:
    def test_matches_fig2(self, capsys):
        assert main(["stream", "--algorithm", "qr", "--nt", "3", "--nb", "180"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "F0 dgeqrt(A[0,0]^rw, T[0,0]^w)"
        assert len(out.strip().splitlines()) == 14

    def test_limit(self, capsys):
        main(["stream", "--algorithm", "qr", "--nt", "3", "--limit", "2"])
        out = capsys.readouterr().out
        assert "(12 more)" in out


class TestDag:
    def test_stats_printed(self, capsys):
        assert main(["dag", "--algorithm", "qr", "--nt", "4"]) == 0
        out = capsys.readouterr().out
        assert "30 tasks" in out
        assert "average parallelism" in out

    def test_dot_written(self, tmp_path, capsys):
        dot = tmp_path / "d.dot"
        main(["dag", "--algorithm", "cholesky", "--nt", "3", "--dot", str(dot)])
        assert dot.exists()
        assert "digraph" in dot.read_text()


class TestRun:
    def test_run_reports_stats(self, capsys):
        code = main(
            ["run", "--algorithm", "cholesky", "--nt", "6", "--nb", "100",
             "--workers", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GFLOP/s" in out
        assert "DGEMM" in out

    def test_run_with_gantt_and_svg(self, tmp_path, capsys):
        svg = tmp_path / "t.svg"
        main(
            ["run", "--algorithm", "cholesky", "--nt", "4", "--nb", "100",
             "--workers", "4", "--gantt", "--gantt-width", "40",
             "--svg", str(svg)]
        )
        out = capsys.readouterr().out
        assert "w0" in out
        assert svg.exists()

    def test_starpu_policy_flag(self, capsys):
        code = main(
            ["run", "--algorithm", "cholesky", "--nt", "4", "--nb", "100",
             "--scheduler", "starpu", "--policy", "ws", "--workers", "4"]
        )
        assert code == 0


class TestSimulate:
    def test_simulate_pipeline(self, capsys):
        code = main(
            ["simulate", "--algorithm", "cholesky", "--nt", "8", "--nb", "100",
             "--cal-nt", "6", "--workers", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "performance:" in out
        assert "error" in out


class TestFigure:
    def test_fig2(self, capsys):
        assert main(["figure", "fig2"]) == 0
        assert "F13" in capsys.readouterr().out

    def test_fig1(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
        assert main(["figure", "fig1"]) == 0
        assert "30 tasks" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 2
