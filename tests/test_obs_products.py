"""Tests for the probe stream's derived products: series, attribution,
Perfetto export, and the bundled timeline artifact set."""

import json

import pytest

from repro.algorithms import cholesky_program
from repro.core.metrics import RunMetrics
from repro.core.simulator import run_real
from repro.obs import (
    RecordingProbe,
    TimeSeries,
    attribute_waits,
    build_series,
    export_timeline,
    load_trace_event,
    loads_trace_event,
    stall_episodes,
    trace_event_document,
)
from repro.schedulers import make_scheduler
from repro.trace.events import Trace


def _observed_run(*, window=None, nt=6, workers=4, scheduler="quark"):
    probe = RecordingProbe()
    metrics = RunMetrics()
    trace = run_real(
        cholesky_program(nt, 100),
        make_scheduler(scheduler, workers, window=window),
        "uniform_4",
        seed=3,
        probe=probe,
        metrics=metrics,
    )
    return trace, probe, metrics


class TestTimeSeries:
    def test_append_collapses_same_timestamp_to_last_value(self):
        s = TimeSeries("x")
        s.append(0.0, 1)
        s.append(0.0, 2)
        s.append(1.0, 3)
        assert s.times == [0.0, 1.0]
        assert s.values == [2, 3]

    def test_peak_sees_collapsed_transients(self):
        s = TimeSeries("x")
        s.append(0.0, 5)
        s.append(0.0, 1)  # burst collapses, but the 5 still counts
        assert s.values == [1]
        assert s.peak == 5

    def test_value_at_step_semantics(self):
        s = TimeSeries("x")
        s.append(1.0, 10)
        s.append(2.0, 20)
        assert s.value_at(0.5) == 0.0
        assert s.value_at(1.0) == 10
        assert s.value_at(1.9) == 10
        assert s.value_at(5.0) == 20


class TestBuildSeries:
    def test_engine_run_has_no_teq_series(self):
        _, probe, _ = _observed_run()
        series = build_series(probe)
        assert "teq_depth" not in series
        assert series.names() == ["active_workers", "ready_depth", "window_occupancy"]

    def test_peaks_consistent_with_run_metrics(self):
        _, probe, metrics = _observed_run()
        peaks = build_series(probe).peaks()
        assert peaks["ready_depth"] == metrics.peak_ready_depth
        assert peaks["window_occupancy"] >= 1

    def test_counters_return_to_zero(self):
        _, probe, _ = _observed_run()
        series = build_series(probe)
        for name in ("ready_depth", "window_occupancy", "active_workers"):
            assert series[name].values[-1] == 0, name

    def test_active_workers_bounded_by_pool(self):
        _, probe, _ = _observed_run()
        assert build_series(probe).peaks()["active_workers"] <= 4

    def test_csv_long_format(self):
        _, probe, _ = _observed_run()
        text = build_series(probe).to_csv()
        lines = text.strip().splitlines()
        assert lines[0] == "series,t,value"
        assert all(line.count(",") == 2 for line in lines[1:])

    def test_json_document_schema(self):
        _, probe, _ = _observed_run()
        doc = build_series(probe).to_dict()
        assert doc["schema"] == "repro.timeline_series/v1"
        assert set(doc["series"]) == set(doc["peaks"])


class TestStallEpisodes:
    def test_balanced_stream_pairs_up(self):
        probe = RecordingProbe()
        probe.window_stall(1.0, True)
        probe.window_stall(2.0, False)
        probe.window_stall(3.0, True)
        probe.window_stall(4.5, False)
        assert stall_episodes(probe) == [(1.0, 2.0), (3.0, 4.5)]

    def test_dangling_begin_closed_at_end_of_run(self):
        probe = RecordingProbe()
        probe.window_stall(1.0, True)
        assert stall_episodes(probe, end_of_run=9.0) == [(1.0, 9.0)]


class TestAttribution:
    def test_components_sum_to_latency(self):
        trace, probe, _ = _observed_run()
        report = attribute_waits(probe, trace)
        assert len(report.tasks) == len(trace)
        for t in report.tasks:
            total = t.dep_wait + t.throttle_wait + t.worker_wait
            assert total == pytest.approx(t.latency, abs=1e-12)
            assert t.dep_wait >= 0 and t.throttle_wait >= 0 and t.worker_wait >= 0

    def test_throttled_run_charges_window_wait(self):
        trace, probe, metrics = _observed_run(window=4)
        report = attribute_waits(probe, trace)
        assert metrics.window_stalls > 0
        assert report.episodes
        assert report.totals()["throttle_wait"] > 0.0

    def test_unthrottled_run_has_zero_throttle(self):
        trace, probe, _ = _observed_run(window=None)
        report = attribute_waits(probe, trace)
        assert report.totals()["throttle_wait"] == 0.0
        assert report.episodes == []

    def test_busy_time_matches_trace(self):
        trace, probe, _ = _observed_run()
        report = attribute_waits(probe, trace)
        busy = sum(e.duration for e in trace.events)
        assert report.totals()["run_time"] == pytest.approx(busy)

    def test_slowest_sorted_descending(self):
        trace, probe, _ = _observed_run()
        slow = attribute_waits(probe, trace).slowest(5)
        assert len(slow) == 5
        assert all(a.latency >= b.latency for a, b in zip(slow, slow[1:]))

    def test_report_text_and_json(self, tmp_path):
        trace, probe, _ = _observed_run()
        report = attribute_waits(probe, trace)
        text = report.report()
        assert "wait attribution" in text and "aggregate waits" in text
        doc = json.loads(report.write_json(tmp_path / "a.json").read_text())
        assert doc["schema"] == "repro.wait_attribution/v1"
        assert doc["n_tasks"] == len(trace)


class TestPerfettoExport:
    def test_document_without_probe_is_lanes_only(self):
        trace, _, _ = _observed_run()
        doc = trace_event_document(trace)
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X"}
        n_tasks = sum(1 for e in doc["traceEvents"] if e.get("cat") == "task")
        assert n_tasks == len(trace)

    def test_document_with_probe_gains_counters(self):
        trace, probe, _ = _observed_run(window=4)
        doc = trace_event_document(trace, probe)
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert "counter" in cats and "scheduler" in cats
        stalls = [e for e in doc["traceEvents"] if e["name"] == "window stall"]
        assert stalls and all(e["dur"] >= 0 for e in stalls)

    def test_round_trip_through_own_loader(self, tmp_path):
        from repro.obs import write_trace_event

        trace, probe, _ = _observed_run()
        path = write_trace_event(tmp_path / "t.json", trace, probe)
        doc = load_trace_event(path)
        assert doc["otherData"]["exporter"] == "repro.obs.perfetto/v1"
        assert doc["otherData"]["n_tasks"] == len(trace)

    def test_loader_rejects_garbage_json(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            loads_trace_event("{nope")

    def test_loader_rejects_missing_trace_events(self):
        with pytest.raises(ValueError, match="missing traceEvents"):
            loads_trace_event(json.dumps({"foo": []}))

    @pytest.mark.parametrize(
        "event, match",
        [
            ({"ph": "B", "pid": 1, "name": "x"}, "unsupported phase"),
            ({"ph": "X", "name": "x", "ts": 0, "dur": 1, "tid": 0}, "integer pid"),
            ({"ph": "X", "pid": 1, "name": "", "ts": 0, "dur": 1}, "event name"),
            ({"ph": "X", "pid": 1, "name": "x", "ts": -1, "dur": 1}, "bad ts"),
            ({"ph": "X", "pid": 1, "name": "x", "ts": 0, "dur": -2, "tid": 0}, "bad dur"),
            ({"ph": "X", "pid": 1, "name": "x", "ts": 0, "dur": 1}, "without integer tid"),
            ({"ph": "M", "pid": 1, "name": "x", "args": {}}, "without args.name"),
            ({"ph": "C", "pid": 1, "name": "x", "ts": 0, "args": {}}, "without samples"),
        ],
    )
    def test_loader_rejects_malformed_events(self, event, match):
        with pytest.raises(ValueError, match=match):
            loads_trace_event(json.dumps({"traceEvents": [event]}))

    def test_empty_trace_exports_metadata_only(self):
        doc = trace_event_document(Trace(2))
        assert all(e["ph"] == "M" for e in doc["traceEvents"])
        loads_trace_event(json.dumps(doc))


class TestExportTimeline:
    def test_writes_full_artifact_set(self, tmp_path):
        trace, probe, metrics = _observed_run()
        art = export_timeline(tmp_path, trace, probe, metrics=metrics)
        for path in art.paths():
            assert path.exists(), path
        assert len(art.paths()) == 6
        load_trace_event(art.perfetto)
        series_doc = json.loads(art.series_json.read_text())
        assert series_doc["peaks"]["ready_depth"] == metrics.peak_ready_depth
        attribution = json.loads(art.attribution_json.read_text())
        assert attribution["n_tasks"] == len(trace)
        samples_doc = json.loads(art.samples_json.read_text())
        assert samples_doc["schema"] == "repro.kernel_samples/v1"
        # drop-first-per-worker: samples + dropped accounts for every task
        n_kept = sum(len(v) for v in samples_doc["samples"].values())
        assert n_kept + samples_doc["n_dropped"] == len(trace)
        assert all(d > 0 for v in samples_doc["samples"].values() for d in v)

    def test_metrics_optional(self, tmp_path):
        trace, probe, _ = _observed_run()
        art = export_timeline(tmp_path, trace, probe, prefix="p")
        assert art.metrics_json is None
        assert len(art.paths()) == 5
        assert art.perfetto.name == "p.perfetto.json"
