"""Tests for DAG construction, analysis, and export."""

import networkx as nx
import pytest

from repro.algorithms import cholesky_program, qr_program
from repro.core.task import Program
from repro.dag import (
    build_dag,
    critical_path,
    dag_stats,
    depth_levels,
    makespan_lower_bound,
    parallelism_profile,
    simple_dag,
    to_dot,
    write_dot,
)


def _chain(n):
    prog = Program("chain")
    x = prog.registry.alloc("x", 64)
    for _ in range(n):
        prog.add_task("K", [x.rw()], flops=10.0)
    return prog


def _fan(n):
    prog = Program("fan")
    src = prog.registry.alloc("src", 64)
    prog.add_task("ROOT", [src.write()], flops=10.0)
    for i in range(n):
        y = prog.registry.alloc(f"y{i}", 64, key=(f"y{i}",))
        prog.add_task("LEAF", [src.read(), y.write()], flops=10.0)
    return prog


class TestBuild:
    def test_chain_is_path(self):
        dag = build_dag(_chain(5))
        assert dag.number_of_nodes() == 5
        assert dag.number_of_edges() == 8  # RaW + WaW per link
        assert nx.is_directed_acyclic_graph(dag)

    def test_fan_out(self):
        dag = simple_dag(_fan(6))
        assert dag.out_degree(0) == 6
        assert all(dag.in_degree(i) == 1 for i in range(1, 7))

    def test_qr_dag_acyclic_and_connected(self):
        dag = build_dag(qr_program(4, 16))
        assert nx.is_directed_acyclic_graph(dag)
        assert nx.is_weakly_connected(dag)
        assert dag.number_of_nodes() == 30

    def test_multiplicity_collapsed_in_simple(self):
        dag = build_dag(_chain(2))
        simple = simple_dag(dag)
        assert simple.number_of_edges() == 1
        assert simple[0][1]["multiplicity"] == 2

    def test_node_attributes(self):
        dag = build_dag(qr_program(2, 16))
        assert dag.nodes[0]["kernel"] == "DGEQRT"
        assert dag.nodes[0]["flops"] > 0

    def test_edges_point_forward(self):
        dag = build_dag(cholesky_program(5, 16))
        assert all(src < dst for src, dst in dag.edges())


class TestAnalysis:
    def test_chain_critical_path(self):
        length, path = critical_path(build_dag(_chain(5)))
        assert length == 50.0
        assert path == [0, 1, 2, 3, 4]

    def test_fan_critical_path(self):
        length, path = critical_path(build_dag(_fan(6)))
        assert length == 20.0
        assert len(path) == 2

    def test_weights_override_flops(self):
        length, _ = critical_path(build_dag(_fan(6)), weights={"ROOT": 5.0, "LEAF": 1.0})
        assert length == 6.0

    def test_depth_levels_chain(self):
        levels = depth_levels(build_dag(_chain(4)))
        assert levels == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_parallelism_profile_fan(self):
        assert parallelism_profile(build_dag(_fan(6))) == [1, 6]

    def test_stats_chain(self):
        stats = dag_stats(build_dag(_chain(4)))
        assert stats.n_tasks == 4
        assert stats.depth == 4
        assert stats.max_width == 1
        assert stats.average_parallelism == pytest.approx(1.0)

    def test_stats_average_parallelism_fan(self):
        stats = dag_stats(build_dag(_fan(9)))
        assert stats.average_parallelism == pytest.approx(100.0 / 20.0)

    def test_lower_bound(self):
        dag = build_dag(_fan(8))
        assert makespan_lower_bound(dag, 1) == pytest.approx(90.0)
        assert makespan_lower_bound(dag, 100) == pytest.approx(20.0)  # CP bound

    def test_lower_bound_invalid_workers(self):
        with pytest.raises(ValueError):
            makespan_lower_bound(build_dag(_chain(2)), 0)

    def test_empty_program(self):
        length, path = critical_path(build_dag(Program("empty")))
        assert length == 0.0 and path == []

    def test_qr_depth_grows_linearly(self):
        d4 = dag_stats(build_dag(qr_program(4, 16))).depth
        d6 = dag_stats(build_dag(qr_program(6, 16))).depth
        assert d6 > d4


class TestExport:
    def test_dot_contains_nodes_and_edges(self):
        dot = to_dot(qr_program(2, 16))
        assert dot.startswith("digraph")
        assert "DGEQRT" in dot or "geqrt" in dot
        assert "->" in dot
        assert dot.rstrip().endswith("}")

    def test_dot_edge_styles_by_hazard(self):
        dot = to_dot(_chain(2))
        assert "style=bold" in dot  # WaW edge
        assert "style=solid" in dot  # RaW edge

    def test_write_dot_creates_file(self, tmp_path):
        path = write_dot(_chain(3), tmp_path / "sub" / "chain.dot")
        assert path.exists()
        assert "digraph" in path.read_text()

    def test_dot_accepts_prebuilt_dag(self):
        dag = build_dag(_chain(2))
        assert to_dot(dag) == to_dot(_chain(2))
