"""Regression tests for the §V-E TEQ race hazard under injected delays.

The paper's Fig. 5 hazard: a task at the front of the Task Execution Queue
returns while the runtime is still dispatching a dependent task, so the
dependent reads an advanced clock and lands in the trace later than
reality.  The quiesce guard (the QUARK extension) closes the window by
refusing to advance while dispatch bookkeeping is in limbo.

These tests pin the guard's *insensitivity to real-time perturbation*: with
FaultPlan delays injected around notification/dispatch — exactly the
perturbations that fire the hazard without a guard — the quiesce path must
yield a trace byte-identical to the fault-free golden digest, with worker
lanes canonicalized (which OS thread hosts a task is a race outcome; the
schedule is not).  The ``none`` guard serves as the experiment's control:
the same injection visibly corrupts its schedule, proving the injection
actually opens the window the guard is being credited for closing.
"""

from __future__ import annotations

import hashlib

from repro.core.faults import FaultPlan
from repro.core.threaded import ThreadedRuntime
from repro.experiments.race import (
    CORRECT_C_START,
    CORRECT_MAKESPAN,
    fig5_models,
    fig5_program,
    run_scenario,
)
from repro.experiments.stress import random_program
from repro.kernels.distributions import ConstantModel
from repro.kernels.timing import KernelModelSet
from repro.trace.compare import canonicalize_workers
from repro.trace.textio import dumps_trace


def canonical_digest(trace) -> str:
    """SHA-256 over the lane-canonicalized plain-text trace bytes."""
    return hashlib.sha256(
        dumps_trace(canonicalize_workers(trace)).encode()
    ).hexdigest()


def run_fig5(faults=None, *, guard: str = "quiesce", seed: int = 0):
    runtime = ThreadedRuntime(2, mode="simulate", guard=guard, faults=faults)
    return runtime.run(fig5_program(), models=fig5_models(), seed=seed)


class TestFig5GoldenDigest:
    def test_fault_free_quiesce_trace_is_deterministic(self):
        golden = canonical_digest(run_fig5())
        for _ in range(5):
            assert canonical_digest(run_fig5()) == golden

    def test_notify_and_dispatch_delays_leave_quiesce_trace_byte_identical(self):
        golden = canonical_digest(run_fig5())
        plans = [
            # The Fig. 5 window: real-time delay around C's dispatch only.
            FaultPlan(dispatch_delay=3e-3, delay_kernels=("KC",)),
            # Delay between TEQ insert and the front wait (notify path).
            FaultPlan(wait_delay=2e-3),
            # Both at once, across several fault seeds.
            FaultPlan(dispatch_delay=3e-3, delay_kernels=("KC",), wait_delay=2e-3),
        ]
        for plan in plans:
            for fault_seed in range(3):
                perturbed = FaultPlan(**{**plan.to_dict(), "seed": fault_seed})
                assert canonical_digest(run_fig5(perturbed)) == golden, (
                    f"quiesce trace diverged under {perturbed}"
                )

    def test_unguarded_control_actually_fires_the_hazard(self):
        """The injection must be real: without a guard the same delay makes
        C start late (the paper's reported inaccuracy), so the byte-identity
        above is the guard working, not the injection being inert."""
        outcome = run_scenario("none", sleep_time=0.0, dispatch_delay=3e-3)
        assert not outcome.correct
        assert outcome.c_start > CORRECT_C_START
        # And the guarded run of the identical scenario is exactly right.
        guarded = run_scenario("quiesce", dispatch_delay=3e-3)
        assert guarded.correct
        assert guarded.c_start == CORRECT_C_START
        assert guarded.makespan == CORRECT_MAKESPAN


class TestRandomProgramsUnderFaults:
    def test_wait_delays_do_not_perturb_quiesce_schedules(self):
        """Across seeded random programs, the quiesce schedule (worker-free
        projection) is invariant under injected notify-path delays."""
        models = KernelModelSet(
            models={
                "KA": ConstantModel(1.0),
                "KB": ConstantModel(1.5),
                "KC": ConstantModel(0.25),
            },
            family="constant",
        )

        def schedule(prog_seed: int, faults=None):
            runtime = ThreadedRuntime(
                2, mode="simulate", guard="quiesce", faults=faults
            )
            trace = runtime.run(
                random_program(10, seed=prog_seed), models=models, seed=0
            )
            return [
                (e.task_id, e.kernel, round(e.start, 9), round(e.end, 9))
                for e in sorted(trace.events, key=lambda e: (e.start, e.end, e.task_id))
            ]

        for prog_seed in range(4):
            golden = schedule(prog_seed)
            for fault_seed in range(3):
                perturbed = schedule(
                    prog_seed, FaultPlan(wait_delay=1e-3, seed=fault_seed)
                )
                assert perturbed == golden, f"program seed {prog_seed} diverged"
