"""Property/differential/regression tests for the calibration layer.

The load-bearing guarantees:

* the log-normal mixture EM is deterministic and recovers well-separated
  components; fitted models survive a ``model_to_params`` →
  ``model_from_params`` round trip bit-for-bit;
* the inverse-CDF samplers (mixture, KDE) are bit-deterministic functions
  of the RNG stream, consume exactly one uniform per draw, and are
  monotone in the uniform — the properties the array engine's
  byte-identity rests on;
* the KS gate rejects single-family fits on bimodal data and routes
  selection to the mixture (or the KDE fallback);
* degenerate sample arrays (empty / singleton / constant) have pinned
  behavior instead of latent crashes;
* the ``repro.calib/v1`` document is content-addressed: the digest is a
  function of the fitted models, never the file path, and the RunSpec
  cache key folds it in exactly when a document is attached.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calib import (
    CALIB_SCHEMA,
    CalibrationDocument,
    DEFAULT_FAMILIES,
    fit_from_probe_dir,
    fit_from_samples,
    fit_kernel,
    ks_threshold,
    load_calibration,
)
from repro.kernels.distributions import (
    EmpiricalModel,
    KDEModel,
    LognormalMixtureModel,
    MODEL_FAMILIES,
    model_from_params,
    model_to_params,
)

pytestmark = pytest.mark.calib


def _mixture_samples(n, *, w=0.5, mu1=-7.0, mu2=-5.0, sigma=0.08, seed=0):
    """Draws from a well-separated 2-component log-normal mixture."""
    rng = np.random.default_rng(seed)
    k = rng.random(n) < w
    logs = np.where(
        k,
        rng.normal(mu1, sigma, size=n),
        rng.normal(mu2, sigma, size=n),
    )
    return np.exp(logs)


# -- mixture EM: determinism, convergence, round trip ------------------------
class TestMixtureFit:
    def test_em_recovers_separated_components(self):
        samples = _mixture_samples(600, w=0.4, seed=3)
        model = LognormalMixtureModel.fit(samples, k=2)
        assert len(model.weights) == 2
        # Components come out canonically sorted by mu_log.
        assert model.mus_log[0] < model.mus_log[1]
        assert model.mus_log[0] == pytest.approx(-7.0, abs=0.05)
        assert model.mus_log[1] == pytest.approx(-5.0, abs=0.05)
        assert model.weights[0] == pytest.approx(0.4, abs=0.06)

    def test_em_is_deterministic(self):
        samples = _mixture_samples(300, seed=11)
        a = LognormalMixtureModel.fit(samples, k=2)
        b = LognormalMixtureModel.fit(samples, k=2)
        assert a.weights == b.weights
        assert a.mus_log == b.mus_log
        assert a.sigmas_log == b.sigmas_log

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        w=st.floats(0.2, 0.8),
        gap=st.floats(1.5, 3.0),
    )
    def test_em_converges_on_two_component_data(self, seed, w, gap):
        samples = _mixture_samples(400, w=w, mu1=-7.0, mu2=-7.0 + gap, seed=seed)
        model = LognormalMixtureModel.fit(samples, k=2)
        # Mixture mean must track the sample mean, and the fit must beat (or
        # tie) the single log-normal on its own training data.
        assert model.mean == pytest.approx(float(np.mean(samples)), rel=0.15)
        single = MODEL_FAMILIES["lognormal"].fit(samples)
        assert model.loglik(samples) >= single.loglik(samples) - 1e-6

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_params_round_trip_is_exact(self, seed):
        samples = _mixture_samples(200, seed=seed)
        model = LognormalMixtureModel.fit(samples, k=2)
        clone = model_from_params(model.family, model_to_params(model))
        assert clone == model
        for q in (0.01, 0.25, 0.5, 0.75, 0.99):
            assert clone.ppf(q) == model.ppf(q)

    def test_single_component_fallback(self):
        # Too few samples for k=2 → one component, never a crash.
        model = LognormalMixtureModel.fit([1e-3, 2e-3, 1.5e-3], k=2)
        assert len(model.weights) == 1
        assert model.weights[0] == 1.0


# -- inverse-CDF samplers: bit-determinism and monotonicity ------------------
class TestInverseCdfSampler:
    @pytest.fixture(params=["mixture", "kde"])
    def model(self, request):
        samples = _mixture_samples(120, seed=5)
        if request.param == "mixture":
            return LognormalMixtureModel.fit(samples, k=2)
        return KDEModel.fit(samples)

    def test_sampler_is_bit_deterministic(self, model):
        a = [model.sample(np.random.default_rng(99)) for _ in range(50)]
        b = [model.sample(np.random.default_rng(99)) for _ in range(50)]
        assert a == b  # exact float equality, not approx

    def test_one_uniform_per_draw(self, model):
        # sample() must consume exactly rng.random() once per draw: the
        # stream of samples equals from_uniform applied to the uniform
        # stream.  The array engine's byte-identity depends on this.
        rng = np.random.default_rng(7)
        drawn = [model.sample(rng) for _ in range(20)]
        expected = [model.from_uniform(u) for u in np.random.default_rng(7).random(20)]
        assert drawn == expected

    def test_from_uniform_is_monotone(self, model):
        us = np.linspace(1e-6, 1.0 - 1e-6, 200)
        xs = [model.from_uniform(u) for u in us]
        assert all(b >= a for a, b in zip(xs, xs[1:]))

    def test_ppf_inverts_cdf(self, model):
        for q in (0.05, 0.3, 0.5, 0.7, 0.95):
            x = model.ppf(q)
            assert float(model.cdf(np.array([x]))[0]) == pytest.approx(q, abs=1e-9)


# -- KS gate -----------------------------------------------------------------
class TestKsGate:
    def test_threshold_formula(self):
        assert ks_threshold(100) == pytest.approx(
            math.sqrt(-math.log(0.025) / 2.0) / 10.0
        )
        with pytest.raises(ValueError):
            ks_threshold(0)
        with pytest.raises(ValueError):
            ks_threshold(100, alpha=1.5)

    def test_gate_rejects_single_families_on_bimodal_data(self):
        samples = _mixture_samples(400, seed=21)
        fit = fit_kernel("DGEMM", samples, families=DEFAULT_FAMILIES)
        by_family = {c["family"]: c for c in fit.candidates}
        assert not by_family["normal"]["ks_pass"]
        assert not by_family["lognormal"]["ks_pass"]
        assert fit.family in ("lognormal_mixture", "kde")
        assert fit.ks_pass

    def test_unimodal_lognormal_picks_a_parametric_family(self):
        rng = np.random.default_rng(4)
        samples = np.exp(rng.normal(-6.0, 0.1, size=400))
        fit = fit_kernel("DTRSM", samples, families=DEFAULT_FAMILIES)
        assert fit.family not in ("kde", "empirical")
        assert fit.selected_by == "aic"
        assert fit.ks_pass

    def test_too_few_samples_goes_constant(self):
        fit = fit_kernel("DSYRK", [1e-3, 2e-3], min_samples=8)
        assert fit.family == "constant"
        assert fit.selected_by == "too_few_samples"


# -- degenerate sample arrays (regression pins) ------------------------------
class TestDegenerateSamples:
    @pytest.mark.parametrize(
        "cls", [EmpiricalModel, KDEModel, LognormalMixtureModel]
    )
    def test_empty_rejected(self, cls):
        with pytest.raises(ValueError):
            cls.fit([])

    @pytest.mark.parametrize("values", [[2e-3], [1e-3] * 10])
    def test_singleton_and_constant_become_point_masses(self, values):
        v = values[0]
        for cls in (EmpiricalModel, KDEModel):
            model = cls.fit(values)
            assert model.mean == pytest.approx(v)
            assert model.std == pytest.approx(0.0, abs=1e-15)
            assert model.ks_statistic(values) == 0.0
            rng = np.random.default_rng(0)
            drawn = [model.sample(rng) for _ in range(5)]
            # Point mass: every draw is the same value (up to the one-ulp
            # difference between np.mean of a constant array and the value).
            assert len(set(drawn)) == 1
            assert drawn[0] == pytest.approx(v, rel=1e-12)

    def test_constant_kde_is_degenerate_despite_float_rounding(self):
        # np.std of a constant array returns ~1e-19, not 0.0; the fit must
        # still take the degenerate branch (this was a latent KS=0.5 bug).
        model = KDEModel.fit([1e-3] * 10)
        assert model.degenerate
        assert model.bandwidth == 0.0
        assert float(model.cdf(np.array([1e-3]))[0]) == 1.0
        assert float(model.cdf_left(np.array([1e-3]))[0]) == 0.0

    def test_constant_mixture_collapses_to_one_component(self):
        model = LognormalMixtureModel.fit([1e-3] * 10, k=2)
        assert model.weights == (1.0,)
        assert model.mean == pytest.approx(1e-3, rel=1e-9)


# -- document: schema, digest, model-set round trip --------------------------
class TestCalibrationDocument:
    @pytest.fixture
    def document(self):
        return fit_from_samples(
            {
                "DGEMM": _mixture_samples(200, seed=1),
                "DTRSM": np.exp(np.random.default_rng(2).normal(-6, 0.1, 300)),
                "DPOTRF": [1e-3, 1.1e-3],  # too few → constant
            },
            provenance={"source": "test"},
        )

    def test_round_trip_preserves_digest(self, document):
        clone = CalibrationDocument.from_dict(
            json.loads(json.dumps(document.to_dict()))
        )
        assert clone.digest() == document.digest()

    def test_digest_is_path_independent(self, document, tmp_path):
        a = document.write(tmp_path / "a" / "cal.json")
        b = document.write(tmp_path / "b" / "renamed.json")
        assert load_calibration(a).digest() == load_calibration(b).digest()
        assert load_calibration(a).digest() == document.digest()

    def test_schema_is_versioned_and_validated(self, document):
        doc = document.to_dict()
        assert doc["schema"] == CALIB_SCHEMA
        doc["schema"] = "repro.calib/v0"
        with pytest.raises(ValueError, match="not a calibration document"):
            CalibrationDocument.from_dict(doc)
        with pytest.raises(ValueError, match="no kernels"):
            CalibrationDocument.from_dict({"schema": CALIB_SCHEMA, "kernels": {}})

    def test_load_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_calibration(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_calibration(bad)

    def test_to_model_set_is_drop_in(self, document):
        models = document.to_model_set()
        assert models.family == "calibrated"
        for kernel in ("DGEMM", "DTRSM", "DPOTRF"):
            assert models.mean_duration(kernel) > 0.0
        # Mixture/KDE models consume the RNG out of stream order, so the
        # set must refuse batch sampling (keeps both engines on the
        # per-call DirectSampler → byte identity for free).
        assert not models.batchable


# -- probe-artifact ingestion ------------------------------------------------
class TestProbeDirFit:
    def test_fit_from_probe_dir_end_to_end(self, tmp_path, quiet_machine):
        from repro.algorithms import cholesky_program
        from repro.core.simulator import run_real
        from repro.obs import RecordingProbe
        from repro.obs.timeline import export_timeline
        from repro.schedulers import make_scheduler

        for seed in (0, 1):
            probe = RecordingProbe()
            trace = run_real(
                cholesky_program(5, 100),
                make_scheduler("quark", 4),
                quiet_machine,
                seed=seed,
                probe=probe,
            )
            export_timeline(tmp_path, trace, probe, prefix=f"run{seed}")

        document = fit_from_probe_dir(tmp_path)
        assert set(document.kernels) == {"DPOTRF", "DTRSM", "DSYRK", "DGEMM"}
        assert document.provenance["source"] == "samples"
        assert len(document.provenance["files_used"]) == 2
        for fit in document.kernels.values():
            assert fit.n_samples >= 1

    def test_empty_probe_dir_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no usable timing artifacts"):
            fit_from_probe_dir(tmp_path)
        with pytest.raises(FileNotFoundError):
            fit_from_probe_dir(tmp_path / "nope")


# -- RunSpec cache-key semantics ---------------------------------------------
class TestCacheKeyPins:
    @pytest.fixture
    def cal_path(self, tmp_path):
        document = fit_from_samples({"DGEMM": _mixture_samples(100, seed=9)})
        return document.write(tmp_path / "cal.json")

    def _spec(self, **kwargs):
        from repro.runner import ProgramSpec, RunSpec, SchedulerSpec

        base = dict(
            program=ProgramSpec("cholesky", 4, 100),
            scheduler=SchedulerSpec("quark", 4),
            machine="uniform_4",
            seed=0,
            mode="simulated",
            cal_nt=4,
        )
        base.update(kwargs)
        return RunSpec(**base)

    def test_no_document_keeps_historical_key(self, cal_path):
        # calibration=None must normalise out of the key entirely.
        assert self._spec().cache_key() == self._spec(calibration=None).cache_key()

    def test_document_content_is_the_identity(self, cal_path, tmp_path):
        moved = tmp_path / "elsewhere" / "renamed.json"
        moved.parent.mkdir()
        moved.write_text(cal_path.read_text())
        assert (
            self._spec(calibration=str(cal_path)).cache_key()
            == self._spec(calibration=str(moved)).cache_key()
        )
        assert (
            self._spec(calibration=str(cal_path)).cache_key()
            != self._spec().cache_key()
        )

    def test_inline_recipe_is_inert_under_a_document(self, cal_path):
        a = self._spec(calibration=str(cal_path), cal_nt=4, family="lognormal")
        b = self._spec(calibration=str(cal_path), cal_nt=12, family="gamma")
        assert a.cache_key() == b.cache_key()

    def test_calibration_requires_simulated_mode(self, cal_path):
        with pytest.raises(ValueError, match="simulated"):
            self._spec(mode="real", calibration=str(cal_path))
