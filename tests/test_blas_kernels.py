"""Numeric correctness of the BLAS-style tile kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import blas


def _spd(n, seed=0):
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, n))
    return m @ m.T + n * np.eye(n)


class TestPotrf:
    def test_factorizes_spd_tile(self):
        a = _spd(8)
        lower = blas.potrf(a.copy())
        assert np.allclose(np.tril(lower) @ np.tril(lower).T, a)

    def test_result_is_lower_triangular(self):
        out = blas.potrf(_spd(8))
        assert np.allclose(np.triu(out, 1), 0.0)

    def test_only_lower_triangle_referenced(self):
        a = _spd(6)
        garbage = a.copy()
        garbage[np.triu_indices(6, 1)] = 1e9  # junk above the diagonal
        assert np.allclose(blas.potrf(a.copy()), blas.potrf(garbage))

    def test_non_spd_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            blas.potrf(-np.eye(4))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            blas.potrf(np.zeros((3, 4)))


class TestTrsm:
    def test_right_lower_transpose_solve(self):
        rng = np.random.default_rng(1)
        lkk = np.linalg.cholesky(_spd(6, 1))
        aik = rng.standard_normal((6, 6))
        expect = aik @ np.linalg.inv(lkk.T)
        assert np.allclose(blas.trsm_rlt(lkk, aik.copy()), expect)

    def test_lu_left_unit_solve(self):
        rng = np.random.default_rng(2)
        packed = np.eye(6) + np.tril(rng.standard_normal((6, 6)), -1)
        akj = rng.standard_normal((6, 6))
        lower_unit = np.tril(packed, -1) + np.eye(6)
        assert np.allclose(
            blas.trsm_lln_unit(packed, akj.copy()), np.linalg.solve(lower_unit, akj)
        )

    def test_lu_right_upper_solve(self):
        rng = np.random.default_rng(3)
        packed = np.triu(rng.standard_normal((6, 6))) + 6 * np.eye(6)
        aik = rng.standard_normal((6, 6))
        assert np.allclose(
            blas.trsm_run(packed, aik.copy()), aik @ np.linalg.inv(np.triu(packed))
        )


class TestUpdates:
    def test_syrk(self):
        rng = np.random.default_rng(4)
        aii = _spd(5, 4)
        aik = rng.standard_normal((5, 5))
        expect = aii - aik @ aik.T
        assert np.allclose(blas.syrk(aii.copy(), aik), expect)

    def test_gemm_nt(self):
        rng = np.random.default_rng(5)
        a, b, c = (rng.standard_normal((5, 5)) for _ in range(3))
        expect = a - b @ c.T
        assert np.allclose(blas.gemm_nt(a.copy(), b, c), expect)

    def test_gemm_nn(self):
        rng = np.random.default_rng(6)
        a, b, c = (rng.standard_normal((5, 5)) for _ in range(3))
        expect = a - b @ c
        assert np.allclose(blas.gemm_nn(a.copy(), b, c), expect)

    def test_updates_mutate_in_place(self):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((4, 4))
        out = blas.gemm_nn(a, np.eye(4), np.eye(4))
        assert out is a


class TestGetrfNopiv:
    def test_factorizes_diagdom_tile(self):
        rng = np.random.default_rng(8)
        a = rng.standard_normal((7, 7)) + 7 * np.eye(7)
        packed = blas.getrf_nopiv(a.copy())
        lower = np.tril(packed, -1) + np.eye(7)
        upper = np.triu(packed)
        assert np.allclose(lower @ upper, a)

    def test_zero_pivot_raises(self):
        a = np.zeros((3, 3))
        with pytest.raises(ZeroDivisionError, match="zero pivot"):
            blas.getrf_nopiv(a)

    def test_matches_scipy_lu_without_pivoting_needed(self):
        # Diagonally dominant => scipy's partial pivoting picks the diagonal.
        a = np.diag([4.0, 5.0, 6.0]) + 0.1
        packed = blas.getrf_nopiv(a.copy())
        from scipy.linalg import lu

        p, _, u = lu(a)
        assert np.allclose(p, np.eye(3))
        assert np.allclose(np.triu(packed), u)


class TestPropertyBased:
    @given(n=st.integers(min_value=1, max_value=12), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_potrf_roundtrip(self, n, seed):
        a = _spd(n, seed)
        lower = np.tril(blas.potrf(a.copy()))
        assert np.allclose(lower @ lower.T, a, atol=1e-8 * n)

    @given(n=st.integers(min_value=1, max_value=12), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_lu_roundtrip(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        packed = blas.getrf_nopiv(a.copy())
        lower = np.tril(packed, -1) + np.eye(n)
        assert np.allclose(lower @ np.triu(packed), a, atol=1e-8 * n)
