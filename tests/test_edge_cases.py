"""Edge-case tests filling remaining coverage gaps across modules."""

import numpy as np
import pytest

from repro.core.simbackend import SimulationBackend
from repro.core.task import DataRegistry, Program, TaskSpec
from repro.kernels.distributions import ConstantModel, EmpiricalModel
from repro.kernels.timing import KernelModelSet
from repro.machine import GpuDevice, HeterogeneousMachine, MachineBackend, get_machine
from repro.schedulers import OmpSsScheduler, QuarkScheduler, StarPUScheduler
from repro.schedulers.base import TaskNode
from repro.trace.events import Trace
from repro.trace.svg import render_svg, write_comparison_svg


def _models(kernels=("K",), duration=1e-3):
    return KernelModelSet(models={k: ConstantModel(duration) for k in kernels})


class TestEngineEdges:
    def test_wide_task_with_master_as_worker_full_width(self):
        # A task as wide as the whole machine must wait for insertion to
        # finish (worker 0 is ineligible while inserting) and then run.
        prog = Program("wide")
        x = prog.registry.alloc("x", 64)
        spec = prog.add_task("K", [x.write()])
        spec.width = 3
        sched = QuarkScheduler(3, insert_cost=1e-4)
        trace = sched.run(prog, SimulationBackend(_models()), seed=0)
        trace.validate()
        assert trace.events[0].width == 3
        assert trace.events[0].start >= 1e-4  # after its own insertion

    def test_wide_then_narrow_interleave(self):
        # Narrow tasks released after a wide head-of-line task still run
        # once the wide one is placed.
        prog = Program("mix")
        refs = [prog.registry.alloc(f"r{i}", 64, key=(f"r{i}",)) for i in range(5)]
        wide = prog.add_task("K", [refs[0].write()])
        wide.width = 2
        for i in range(1, 5):
            prog.add_task("K", [refs[i].write()])
        sched = OmpSsScheduler(3, insert_cost=0.0, dispatch_overhead=0.0)
        trace = sched.run(prog, SimulationBackend(_models()), seed=0)
        trace.validate()
        assert len(trace) == 5

    def test_starpu_ws_with_wide_tasks(self):
        prog = Program("ws-wide")
        refs = [prog.registry.alloc(f"r{i}", 64, key=(f"r{i}",)) for i in range(6)]
        for i, ref in enumerate(refs):
            spec = prog.add_task("K", [ref.write()])
            spec.width = 2 if i % 3 == 0 else 1
        sched = StarPUScheduler(4, policy="ws")
        trace = sched.run(prog, SimulationBackend(_models()), seed=0)
        trace.validate()
        assert len(trace) == 6

    def test_zero_flop_task_gets_launch_latency(self):
        machine = get_machine("uniform_4")
        prog = Program("zero")
        x = prog.registry.alloc("x", 64)
        prog.add_task("K", [x.write()], flops=0.0)
        trace = OmpSsScheduler(2).run(prog, MachineBackend(machine), seed=0)
        assert trace.events[0].duration == pytest.approx(machine.launch_latency)


class TestSvgEdges:
    def test_zero_duration_event_renders(self):
        tr = Trace(1)
        tr.record(0, 0, "K", 1.0, 1.0)
        svg = render_svg(tr)
        assert "<rect" in svg  # minimum-width sliver still drawn

    def test_comparison_with_different_worker_counts(self, tmp_path):
        a = Trace(2)
        a.record(0, 0, "K", 0.0, 1.0)
        b = Trace(4)
        b.record(3, 0, "K", 0.0, 2.0)
        path = write_comparison_svg(a, b, tmp_path / "c.svg")
        text = path.read_text()
        assert text.count("<svg") == 1
        assert text.count("</svg>") == 1

    def test_nonzero_trace_origin_uses_relative_axis(self):
        tr = Trace(1)
        tr.record(0, 0, "K", 100.0, 101.0)
        svg = render_svg(tr)
        assert "1s" in svg  # axis spans 1 second, not 101


class TestEmpiricalModelEdges:
    def test_single_sample_pdf_is_spike(self):
        m = EmpiricalModel.fit([2.0])
        assert m.pdf(np.array([2.0]))[0] > m.pdf(np.array([3.0]))[0]

    def test_identical_samples_sampling(self):
        m = EmpiricalModel.fit([1.5, 1.5, 1.5])
        rng = np.random.default_rng(0)
        assert m.sample(rng) == 1.5
        assert m.std == 0.0


class TestHeterogeneousEdges:
    def test_gpu_worker_runs_unknown_kernel_with_fallback_speedup(self):
        hm = HeterogeneousMachine(
            cpu=get_machine("uniform_4"), gpus=(GpuDevice(),), n_cpu_workers=3
        )
        assert hm.gpus[0].kernel_speedup("MYSTERY") == 4.0

    def test_worker_kinds_tuple_immutable_view(self):
        hm = HeterogeneousMachine(
            cpu=get_machine("uniform_4"), gpus=(GpuDevice(),), n_cpu_workers=2
        )
        kinds = hm.worker_kinds
        assert isinstance(kinds, tuple)
        assert kinds == ("cpu", "cpu", "gpu")

    def test_dmda_homogeneous_unaffected_by_kind_plumbing(self):
        # Without worker_kinds, the per-kind model key degenerates to the
        # kernel name: behaviour identical to the pre-extension scheduler.
        prog = Program("p")
        refs = [prog.registry.alloc(f"r{i}", 64, key=(f"r{i}",)) for i in range(6)]
        for ref in refs:
            prog.add_task("K", [ref.write()])
        t1 = StarPUScheduler(3, policy="dmda").run(
            prog, SimulationBackend(_models()), seed=0
        )
        prog2 = Program("p2")
        refs2 = [prog2.registry.alloc(f"r{i}", 64, key=(f"r{i}",)) for i in range(6)]
        for ref in refs2:
            prog2.add_task("K", [ref.write()])
        t2 = StarPUScheduler(3, policy="dmda", worker_kinds=("cpu",) * 3).run(
            prog2, SimulationBackend(_models()), seed=0
        )
        assert [e.worker for e in sorted(t1.events)] == [
            e.worker for e in sorted(t2.events)
        ]


class TestTaskModelEdges:
    def test_value_access_creates_no_dependence(self):
        from repro.core.task import Access, AccessMode
        from repro.schedulers.taskdep import HazardTracker

        prog = Program("v")
        x = prog.registry.alloc("x", 64)
        prog.add_task("K", [Access(x, AccessMode.VALUE)])
        prog.add_task("K", [Access(x, AccessMode.VALUE)])
        tracker = HazardTracker()
        for t in prog:
            assert tracker.add_task(t) == []

    def test_registry_default_key_is_name(self):
        reg = DataRegistry()
        a = reg.alloc("x", 64)
        b = reg.alloc("x", 64)
        assert a is b  # same default key ("x",)

    def test_program_meta_copied(self):
        meta = {"nt": 4}
        prog = Program("p", meta=meta)
        meta["nt"] = 99
        assert prog.meta["nt"] == 4


class TestBackendEdges:
    def test_simulation_backend_warmup_independent_of_models(self):
        backend = SimulationBackend(_models(), warmup_penalty=1e-2)
        backend.reset(np.random.default_rng(0), 2)
        spec = TaskSpec("K", (DataRegistry().alloc("x", 8).rw(),))
        spec.task_id = 0
        node = TaskNode(spec)
        warm = backend.duration(node, 0, 0.0, 1)
        cold = backend.duration(node, 0, 0.0, 1)
        assert warm - cold == pytest.approx(1e-2)

    def test_machine_backend_reset_clears_cache_state(self):
        machine = get_machine("magny_cours_48").quiet()
        backend = MachineBackend(machine)
        rng = np.random.default_rng(0)
        backend.reset(rng, 4)
        reg = DataRegistry()
        spec = TaskSpec("DGEMM", (reg.alloc("t", 500_000).rw(),), flops=1e7)
        spec.task_id = 0
        node = TaskNode(spec)
        cold1 = backend.duration(node, 0, 0.0, 1)
        backend.duration(node, 0, 1.0, 1)  # warm now
        backend.reset(rng, 4)  # new run: cache must be cold again
        cold2 = backend.duration(node, 0, 0.0, 1)
        assert cold2 == pytest.approx(cold1)
