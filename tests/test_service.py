"""Tests of the ``repro serve`` stack: protocol, core service, HTTP e2e.

The concurrency-sensitive behaviours (single-flight coalescing,
backpressure, deadlines, draining) are pinned against the transport-free
:class:`SimulationService` with an injected, gateable ``run_fn`` — every
race in these tests is opened and closed explicitly, never by sleeping and
hoping.  The HTTP layer is then exercised end-to-end: a live server, real
sockets, 32 concurrent clients, and a SIGTERM drain of a subprocess.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

import repro
from repro.core.metrics import RunMetrics
from repro.runner.cache import ResultCache
from repro.runner.runner import RunResult, run_cached
from repro.runner.spec import ProgramSpec, RunSpec, SchedulerSpec
from repro.service import (
    ReproServer,
    RunRequest,
    ServiceClient,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    ServiceTimeout,
    SimulationService,
    sweep_via_service,
)
from repro.service.protocol import SERVICE_SCHEMA, error_document


def make_spec(seed: int = 0, nt: int = 4, **kwargs) -> RunSpec:
    return RunSpec(
        program=ProgramSpec("cholesky", nt, 32),
        scheduler=SchedulerSpec("quark", n_workers=4),
        machine="uniform_4",
        seed=seed,
        **kwargs,
    )


def fake_result(spec: RunSpec) -> RunResult:
    return RunResult(
        spec=spec,
        key=spec.cache_key(),
        cached=False,
        metrics=RunMetrics(),
        wall_s=0.0,
        trace_text=f"fake-trace-{spec.seed}\n",
    )


class Gate:
    """An injectable run_fn whose completion the test controls explicitly."""

    def __init__(self) -> None:
        self.release = threading.Event()
        self.lock = threading.Lock()
        self.requests: list = []

    def __call__(self, request: RunRequest) -> RunResult:
        with self.lock:
            self.requests.append(request)
        assert self.release.wait(30), "test forgot to release the gate"
        return fake_result(request.spec)

    def started(self) -> int:
        with self.lock:
            return len(self.requests)


def wait_until(predicate, timeout_s: float = 10.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.005)


# ---------------------------------------------------------------------------
# protocol documents
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_request_document_roundtrip(self):
        req = RunRequest(spec=make_spec(seed=3), timeline=True, timeout_s=2.5)
        back = RunRequest.from_document(req.to_document())
        assert back == req
        assert back.spec.cache_key() == req.spec.cache_key()

    def test_rejects_unknown_request_field(self):
        doc = RunRequest(spec=make_spec()).to_document()
        doc["timelinee"] = True
        with pytest.raises(ValueError, match="timelinee"):
            RunRequest.from_document(doc)

    def test_rejects_unknown_spec_field_from_the_wire(self):
        doc = RunRequest(spec=make_spec()).to_document()
        doc["spec"]["sheduler"] = {"name": "quark"}
        with pytest.raises(ValueError, match="sheduler"):
            RunRequest.from_document(doc)

    def test_rejects_foreign_schema(self):
        doc = RunRequest(spec=make_spec()).to_document()
        doc["schema"] = "somebody.else/v9"
        with pytest.raises(ValueError, match="schema"):
            RunRequest.from_document(doc)

    @pytest.mark.parametrize("timeout", [0, -1.0, "fast", True])
    def test_rejects_bad_timeout(self, timeout):
        doc = RunRequest(spec=make_spec()).to_document()
        doc["timeout_s"] = timeout
        with pytest.raises(ValueError, match="timeout_s"):
            RunRequest.from_document(doc)

    def test_error_document_requires_known_code(self):
        with pytest.raises(ValueError, match="unknown error code"):
            error_document("nope", "x")
        doc = error_document("overloaded", "busy", retry_after_s=0.5)
        assert doc["ok"] is False and doc["retry_after_s"] == 0.5


# ---------------------------------------------------------------------------
# service core (injected run_fn: deterministic concurrency)
# ---------------------------------------------------------------------------


class TestServiceCore:
    def test_identical_inflight_requests_coalesce_to_one_execution(self):
        gate = Gate()
        with SimulationService(workers=2, max_pending=8, run_fn=gate) as svc:
            results, n = [], 6
            threads = [
                threading.Thread(target=lambda: results.append(svc.submit(RunRequest(make_spec()))))
                for _ in range(n)
            ]
            for t in threads:
                t.start()
            # All six must be inside submit() before the flight completes.
            wait_until(lambda: svc.stats().requests == n)
            assert gate.started() == 1  # single flight despite six requests
            gate.release.set()
            for t in threads:
                t.join(10)
            assert len(results) == n
            assert sum(1 for r in results if r.coalesced) == n - 1
            assert len({r.result.trace_text for r in results}) == 1
            stats = svc.stats()
            assert stats.executed == 1 and stats.coalesced == n - 1

    def test_distinct_specs_get_distinct_flights(self):
        gate = Gate()
        with SimulationService(workers=4, max_pending=8, run_fn=gate) as svc:
            threads = [
                threading.Thread(target=svc.submit, args=(RunRequest(make_spec(seed=s)),))
                for s in (1, 2)
            ]
            for t in threads:
                t.start()
            wait_until(lambda: gate.started() == 2)
            gate.release.set()
            for t in threads:
                t.join(10)
            assert svc.stats().executed == 2 and svc.stats().coalesced == 0

    def test_timeline_flag_never_coalesces_onto_plain_flight(self):
        gate = Gate()
        with SimulationService(workers=4, max_pending=8, run_fn=gate) as svc:
            threads = [
                threading.Thread(target=svc.submit, args=(RunRequest(make_spec(), timeline=tl),))
                for tl in (False, True)
            ]
            for t in threads:
                t.start()
            wait_until(lambda: gate.started() == 2)  # same spec, two flights
            gate.release.set()
            for t in threads:
                t.join(10)

    def test_overload_rejection_is_retriable_and_leaves_flights_alone(self):
        gate = Gate()
        with SimulationService(workers=1, max_pending=2, run_fn=gate) as svc:
            threads = [
                threading.Thread(target=svc.submit, args=(RunRequest(make_spec(seed=s)),))
                for s in (1, 2)
            ]
            for t in threads:
                t.start()
            wait_until(lambda: svc.stats().in_flight == 2)
            with pytest.raises(ServiceOverloaded) as err:
                svc.submit(RunRequest(make_spec(seed=3)))
            assert err.value.retriable and err.value.retry_after_s > 0
            gate.release.set()
            for t in threads:
                t.join(10)
            # Admission reopens once the backlog clears: the retry succeeds.
            served = svc.submit(RunRequest(make_spec(seed=3)))
            assert not served.coalesced
            assert svc.stats().rejected_overload == 1

    def test_deadline_raises_timeout_but_flight_still_completes(self):
        gate = Gate()
        with SimulationService(workers=1, max_pending=4, run_fn=gate) as svc:
            with pytest.raises(ServiceTimeout) as err:
                svc.submit(RunRequest(make_spec(), timeout_s=0.05))
            assert err.value.retriable
            gate.release.set()
            wait_until(lambda: svc.stats().executed == 1)  # ran to completion
            assert svc.stats().timeouts == 1

    def test_run_failure_propagates_as_non_retriable_error(self):
        def boom(request):
            raise RuntimeError("kaboom")

        with SimulationService(workers=1, max_pending=4, run_fn=boom) as svc:
            with pytest.raises(ServiceError, match="kaboom") as err:
                svc.submit(RunRequest(make_spec()))
            assert not err.value.retriable
            assert svc.stats().failures == 1

    def test_drain_refuses_new_work_and_waits_for_inflight(self):
        gate = Gate()
        svc = SimulationService(workers=1, max_pending=4, run_fn=gate)
        done = []
        t = threading.Thread(
            target=lambda: done.append(svc.submit(RunRequest(make_spec())))
        )
        t.start()
        wait_until(lambda: gate.started() == 1)
        assert svc.drain(timeout_s=0.05) is False  # in-flight work pins it open
        with pytest.raises(ServiceClosed) as err:
            svc.submit(RunRequest(make_spec(seed=9)))
        assert err.value.retriable
        gate.release.set()
        assert svc.drain(timeout_s=10.0) is True
        t.join(10)
        assert len(done) == 1 and done[0].result is not None
        assert svc.close() is True

    def test_request_deadline_becomes_threaded_stall_budget(self):
        captured = []

        def capture(request):
            captured.append(request)
            return fake_result(request.spec)

        spec = make_spec(mode="simulated", runtime="threaded", cal_nt=2)
        with SimulationService(workers=1, max_pending=4, run_fn=capture) as svc:
            svc.submit(RunRequest(spec, timeout_s=7.5))
        adjusted = captured[0].spec
        assert adjusted.stall_timeout == 7.5
        # The stall budget is watchdog configuration, not run identity.
        assert adjusted.cache_key() == spec.cache_key()

    def test_malformed_document_raises_value_error(self):
        with SimulationService(workers=1, run_fn=fake_result) as svc:
            with pytest.raises(ValueError):
                svc.submit_document({"spec": {"program": {"algorithm": "nope"}}})


# ---------------------------------------------------------------------------
# service core against real runs + the shared cache
# ---------------------------------------------------------------------------


class TestServiceRealRuns:
    def test_served_bytes_match_direct_execution_and_cache_hits(self, tmp_path):
        spec = make_spec(seed=5)
        with SimulationService(workers=2, cache=tmp_path / "cache") as svc:
            first = svc.submit(RunRequest(spec))
            second = svc.submit(RunRequest(spec))
        assert not first.result.cached and second.result.cached
        direct = run_cached(spec, None)
        assert first.result.trace_dump() == direct.trace_dump()
        assert second.result.trace_dump() == direct.trace_dump()

    def test_timeline_request_exports_artifacts_and_publishes(self, tmp_path):
        spec = make_spec(seed=6)
        with SimulationService(
            workers=1, cache=tmp_path / "cache", probe_dir=tmp_path / "probes"
        ) as svc:
            observed = svc.submit(RunRequest(spec, timeline=True))
            assert observed.artifacts and all(p.is_file() for p in observed.artifacts)
            assert not observed.result.cached  # probes force execution
            # ... but the observed run still published: the plain run hits.
            assert svc.submit(RunRequest(spec)).result.cached


# ---------------------------------------------------------------------------
# HTTP end to end
# ---------------------------------------------------------------------------


@pytest.fixture
def live_server():
    """Start a ReproServer on an ephemeral port around an injected service."""
    started = []

    def start(service: SimulationService) -> ServiceClient:
        server = ReproServer(service, port=0).start()
        started.append(server)
        host, port = server.address
        return ServiceClient(host, port, max_retries=0)

    yield start
    for server in started:
        server.shutdown(drain_timeout_s=10)
        assert server.wait_closed(10)


class TestHTTPEndToEnd:
    N_DISTINCT = 8
    COPIES = 4  # 32 concurrent requests total

    def test_32_concurrent_requests_single_flight_and_byte_identity(
        self, tmp_path, live_server
    ):
        release = threading.Event()
        executions: Counter = Counter()
        lock = threading.Lock()
        cache = ResultCache(tmp_path / "cache")

        def gated_run(request: RunRequest) -> RunResult:
            with lock:
                executions[request.spec.cache_key()] += 1
            assert release.wait(30)
            return run_cached(request.spec, cache)

        service = SimulationService(
            workers=self.N_DISTINCT, max_pending=64, run_fn=gated_run
        )
        client = live_server(service)
        specs = [make_spec(seed=s) for s in range(self.N_DISTINCT)] * self.COPIES
        total = len(specs)
        assert total == 32

        with ThreadPoolExecutor(max_workers=total) as pool:
            futures = [pool.submit(client.run, spec) for spec in specs]
            # Hold every flight until all 32 requests are inside submit():
            # duplicates then *must* coalesce rather than racing the cache.
            wait_until(lambda: service.stats().requests == total, timeout_s=20)
            release.set()
            docs = [f.result(timeout=60) for f in futures]

        assert all(doc["ok"] for doc in docs)
        # Single-flight: every distinct spec executed exactly once.
        assert sorted(executions.values()) == [1] * self.N_DISTINCT
        stats = service.stats()
        assert stats.executed == self.N_DISTINCT
        assert stats.coalesced == total - self.N_DISTINCT
        # Byte identity: every response carries exactly the bytes a direct
        # in-process run of the same spec produces.
        by_key = {}
        for spec, doc in zip(specs, docs):
            by_key.setdefault(spec.cache_key(), []).append((spec, doc))
        for key, group in by_key.items():
            spec = group[0][0]
            expected = run_cached(spec, None).trace_dump()
            for _, doc in group:
                assert doc["trace"] == expected
                assert doc["key"] == key

    def test_over_limit_load_rejected_retriable_not_hung(self, live_server):
        gate = Gate()
        service = SimulationService(workers=1, max_pending=1, run_fn=gate)
        client = live_server(service)

        with ThreadPoolExecutor(max_workers=1) as pool:
            blocked = pool.submit(client.run, make_spec(seed=0))
            wait_until(lambda: gate.started() == 1)
            t0 = time.monotonic()
            with pytest.raises(ServiceOverloaded) as err:
                client.run(make_spec(seed=1))
            assert time.monotonic() - t0 < 10  # rejected promptly, no hang
            assert err.value.retriable and err.value.retry_after_s is not None
            gate.release.set()
            assert blocked.result(timeout=30)["ok"]
        # A retrying client turns the same rejection into eventual success.
        patient = ServiceClient(client.host, client.port, max_retries=8)
        assert patient.run(make_spec(seed=1))["ok"]

    def test_health_stats_and_batch_endpoints(self, live_server):
        service = SimulationService(workers=2, run_fn=lambda r: fake_result(r.spec))
        client = live_server(service)
        assert client.health()["status"] == "serving"
        good = RunRequest(make_spec(seed=1))
        bad = {"schema": SERVICE_SCHEMA, "spec": {"program": {"algorithm": "nope"}}}
        docs = client.batch([good])
        assert len(docs) == 1 and docs[0]["ok"]
        # A malformed sibling fails alone, without poisoning the batch.
        import http.client

        conn = http.client.HTTPConnection(client.host, client.port, timeout=10)
        conn.request(
            "POST",
            "/v1/batch",
            body=json.dumps({"requests": [good.to_document(), bad]}),
        )
        resp = json.loads(conn.getresponse().read())
        conn.close()
        assert resp["responses"][0]["ok"]
        assert not resp["responses"][1]["ok"]
        assert resp["responses"][1]["error"] == "bad_request"
        stats = client.stats()
        assert stats["ok"] and stats["requests"] >= 2

    def test_sweep_via_service_coalesces_duplicates(self, live_server):
        cache_free = SimulationService(workers=4, max_pending=64)
        client = live_server(cache_free)
        specs = [make_spec(seed=s % 3) for s in range(9)]
        docs = sweep_via_service(specs, client, jobs=9)
        assert len(docs) == 9 and all(d["ok"] for d in docs)
        for spec, doc in zip(specs, docs):
            assert doc["key"] == spec.cache_key()


@pytest.mark.slow
class TestServeProcess:
    """The daemon as users run it: a real subprocess, killed with SIGTERM."""

    def _start_serve(self, tmp_path, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "2", "--cache-dir", str(tmp_path / "cache"), *extra],
            env=env, stderr=subprocess.PIPE, text=True, cwd=str(tmp_path),
        )
        line = proc.stderr.readline()
        match = re.search(r"http://[^:]+:(\d+)", line)
        assert match, f"serve never announced its port: {line!r}"
        return proc, int(match.group(1))

    def test_sigterm_drains_inflight_request_before_exit(self, tmp_path):
        proc, port = self._start_serve(tmp_path)
        try:
            client = ServiceClient("127.0.0.1", port, max_retries=0)
            big = RunSpec(
                program=ProgramSpec("cholesky", 48, 64),  # ~1s of real work
                scheduler=SchedulerSpec("quark", n_workers=4),
                machine="uniform_4",
                seed=0,
            )
            with ThreadPoolExecutor(max_workers=1) as pool:
                inflight = pool.submit(client.run, big)
                # SIGTERM only once the daemon has admitted the flight.
                wait_until(lambda: client.stats().get("in_flight", 0) >= 1,
                           timeout_s=30)
                proc.send_signal(signal.SIGTERM)
                doc = inflight.result(timeout=60)
            # Drain semantics: the in-flight run completed and was answered.
            assert doc["ok"] and len(doc["trace"].splitlines()) > 100
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
            proc.stderr.close()
