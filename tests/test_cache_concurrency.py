"""Property test: the ResultCache under concurrent multi-process traffic.

The cache's contract (``runner/cache.py``) is that concurrent writers race
*benignly*: entries are staged privately and published with one atomic
rename, so a reader — in any process — must only ever observe a clean miss
or a complete, schema-valid entry whose bytes equal what a lone writer
would have produced.  This file hammers one cache directory from several
``multiprocessing`` workers doing randomized put/get/scan traffic against a
small, contended key set and asserts exactly that contract, including
recovery from pre-seeded *partial* entries (an interrupted writer's
directory holding a trace but no metrics must be repaired by the next put,
never returned by a lookup).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import random
from typing import List, Tuple

from repro.core.metrics import RunMetrics
from repro.runner.cache import ResultCache
from repro.trace.events import Trace
from repro.trace.textio import dumps_trace

N_KEYS = 6
_TRACE = "trace.txt"


def payload(i: int) -> Tuple[str, Trace, RunMetrics]:
    """Deterministic (key, trace, metrics) for slot ``i`` — the cache stores
    pure functions of the spec, so every process writes identical bytes and
    any divergence a reader sees is corruption by definition."""
    key = hashlib.sha256(f"cache-stress-{i}".encode()).hexdigest()
    trace = Trace(2, meta={"slot": i, "mode": "test"})
    for t in range(3 + i):
        trace.record(t % 2, t, "KA" if t % 2 else "KB", float(t), float(t) + 1.5 + i)
    metrics = RunMetrics(tasks_executed=3 + i)
    metrics.extra["slot"] = i
    return key, trace, metrics


def expected_trace_bytes(i: int) -> str:
    return dumps_trace(payload(i)[1])


def hammer(args: Tuple[str, int, int]) -> List[str]:
    """One worker process: randomized put/get/scan ops; returns violations."""
    root, n_ops, seed = args
    cache = ResultCache(root)
    rng = random.Random(seed)
    violations: List[str] = []
    for op in range(n_ops):
        i = rng.randrange(N_KEYS)
        key, trace, metrics = payload(i)
        roll = rng.random()
        if roll < 0.45:
            entry = cache.put(key, trace, metrics, {"slot": i})
            if entry.trace_path.read_text() != expected_trace_bytes(i):
                violations.append(f"put#{op}: published bytes differ for slot {i}")
        elif roll < 0.9:
            hit = cache.get(key)
            if hit is None:
                continue  # a miss is always a legal answer
            try:
                if hit.trace_path.read_text() != expected_trace_bytes(i):
                    violations.append(f"get#{op}: trace bytes differ for slot {i}")
                if hit.load_metrics().extra.get("slot") != i:
                    violations.append(f"get#{op}: metrics mismatch for slot {i}")
                if json.loads((hit.path / "spec.json").read_text())["slot"] != i:
                    violations.append(f"get#{op}: spec provenance mismatch for slot {i}")
            except Exception as exc:  # corrupt entry visible to a reader
                violations.append(f"get#{op}: unreadable entry for slot {i}: {exc}")
        else:
            # Scans must only surface complete entries, never partials.
            for entry in cache.entries():
                try:
                    entry.load_trace()
                    entry.load_metrics()
                except Exception as exc:
                    violations.append(f"scan#{op}: incomplete entry surfaced: {exc}")
    return violations


def seed_partial_entry(cache: ResultCache, i: int) -> None:
    """Fake an interrupted writer: an entry directory holding only a trace."""
    key, trace, _ = payload(i)
    path = cache._entry_dir(key)
    path.mkdir(parents=True, exist_ok=True)
    (path / _TRACE).write_text(dumps_trace(trace))


class TestCacheMultiprocessConcurrency:
    def test_concurrent_writers_and_readers_never_corrupt_entries(self, tmp_path):
        root = str(tmp_path / "cache")
        cache = ResultCache(root)
        # Two keys start as stale partials (interrupted writers): lookups
        # must treat them as misses and concurrent puts must repair them.
        seed_partial_entry(cache, 0)
        seed_partial_entry(cache, 1)
        assert cache.get(payload(0)[0]) is None

        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        n_procs, n_ops = 4, 80
        with ctx.Pool(processes=n_procs) as pool:
            results = pool.map(
                hammer, [(root, n_ops, 1000 + p) for p in range(n_procs)]
            )
        violations = [v for sub in results for v in sub]
        assert violations == [], violations[:10]

        # Post-mortem: every key is either absent or complete-and-correct,
        # and the seeded partials were repaired by the first winning put.
        complete = 0
        for i in range(N_KEYS):
            key, _, _ = payload(i)
            hit = cache.get(key)
            if hit is None:
                continue
            complete += 1
            assert hit.trace_path.read_text() == expected_trace_bytes(i)
            assert hit.load_metrics().extra["slot"] == i
        assert complete >= 2  # 4x80 randomized ops certainly published some
        assert len(cache) == complete

    def test_single_process_interleaved_put_get_is_consistent(self, tmp_path):
        """The same property holds trivially in-process (fast sanity path)."""
        cache = ResultCache(tmp_path / "cache")
        rng = random.Random(7)
        for op in range(120):
            i = rng.randrange(N_KEYS)
            key, trace, metrics = payload(i)
            if rng.random() < 0.5:
                cache.put(key, trace, metrics, {"slot": i})
            else:
                hit = cache.get(key)
                if hit is not None:
                    assert hit.trace_path.read_text() == expected_trace_bytes(i)
