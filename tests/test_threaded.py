"""Tests for the threaded runtime (execute and simulate modes)."""

import numpy as np
import pytest

from repro.algorithms import (
    TiledMatrix,
    cholesky_program,
    qr_program,
    random_general,
    random_spd,
)
from repro.core.simbackend import SimulationBackend
from repro.core.threaded import RACE_GUARDS, ThreadedRuntime
from repro.dag import build_dag, simple_dag
from repro.experiments.race import (
    CORRECT_C_START,
    CORRECT_MAKESPAN,
    fig5_models,
    fig5_program,
    run_scenario,
)
from repro.kernels.distributions import ConstantModel
from repro.kernels.timing import KernelModelSet
from repro.schedulers import QuarkScheduler


def _const_models(kernels, duration=1e-3):
    return KernelModelSet(models={k: ConstantModel(duration) for k in kernels})


class TestConstruction:
    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            ThreadedRuntime(2, mode="dryrun")

    def test_invalid_guard(self):
        with pytest.raises(ValueError):
            ThreadedRuntime(2, guard="mutex")

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ThreadedRuntime(0)

    def test_simulate_requires_models(self):
        rt = ThreadedRuntime(2, mode="simulate")
        with pytest.raises(ValueError, match="timing models"):
            rt.run(fig5_program())

    def test_execute_requires_store(self):
        rt = ThreadedRuntime(2, mode="execute")
        with pytest.raises(ValueError, match="TileStore"):
            rt.run(cholesky_program(2, 4))


class TestExecuteMode:
    def test_parallel_cholesky_correct(self):
        n, nb = 32, 8
        a = random_spd(n, np.random.default_rng(0))
        tm = TiledMatrix(a.copy(), nb)
        rt = ThreadedRuntime(4, mode="execute")
        trace = rt.run(cholesky_program(tm.nt, nb), store=tm.store, seed=0)
        trace.validate()
        lower = np.tril(tm.lower_tiles_dense())
        assert np.allclose(lower @ lower.T, a, atol=1e-8)

    def test_parallel_qr_correct(self):
        n, nb = 24, 6
        a = random_general(n, np.random.default_rng(1))
        tm = TiledMatrix(a.copy(), nb)
        rt = ThreadedRuntime(3, mode="execute")
        trace = rt.run(qr_program(tm.nt, nb), store=tm.store, seed=0)
        trace.validate()
        from repro.algorithms import extract_r

        r = extract_r(tm)
        assert np.allclose(r.T @ r, a.T @ a, atol=1e-8)

    def test_repeated_runs_identical_numerics(self):
        n, nb = 24, 6
        a = random_spd(n, np.random.default_rng(2))
        results = []
        for _ in range(3):
            tm = TiledMatrix(a.copy(), nb)
            ThreadedRuntime(4, mode="execute").run(
                cholesky_program(tm.nt, nb), store=tm.store, seed=0
            )
            results.append(tm.to_dense())
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[1], results[2])

    def test_single_worker_works(self):
        n, nb = 16, 4
        a = random_spd(n, np.random.default_rng(3))
        tm = TiledMatrix(a.copy(), nb)
        trace = ThreadedRuntime(1, mode="execute").run(
            cholesky_program(tm.nt, nb), store=tm.store
        )
        assert len(trace) == len(cholesky_program(tm.nt, nb))

    def test_empty_program(self):
        from repro.core.task import Program

        trace = ThreadedRuntime(2, mode="execute").run(
            Program("empty", meta={"nb": 4}), store=TiledMatrix(np.eye(4), 4).store
        )
        assert len(trace) == 0


class TestSimulateMode:
    def test_all_tasks_simulated_once(self):
        prog = qr_program(4, 16)
        models = _const_models(("DGEQRT", "DORMQR", "DTSQRT", "DTSMQR"))
        trace = ThreadedRuntime(4, mode="simulate").run(prog, models=models, seed=0)
        trace.validate()
        assert len(trace) == len(prog)

    def test_virtual_times_respect_dependences(self):
        prog = cholesky_program(4, 16)
        models = _const_models(("DPOTRF", "DTRSM", "DSYRK", "DGEMM"))
        trace = ThreadedRuntime(4, mode="simulate").run(prog, models=models, seed=0)
        starts = {e.task_id: e.start for e in trace.events}
        ends = {e.task_id: e.end for e in trace.events}
        for src, dst in simple_dag(build_dag(prog)).edges():
            assert starts[dst] >= ends[src] - 1e-12

    def test_matches_event_driven_makespan(self):
        """The threaded TEQ protocol and the event-driven engine are two
        implementations of the same semantics: with constant durations and
        no engine overheads they must produce the same makespan."""
        prog = cholesky_program(5, 16)
        models = _const_models(("DPOTRF", "DTRSM", "DSYRK", "DGEMM"))
        threaded = ThreadedRuntime(4, mode="simulate").run(prog, models=models, seed=0)
        sched = QuarkScheduler(4, insert_cost=0.0, dispatch_overhead=0.0,
                               completion_cost=0.0)
        event = sched.run(cholesky_program(5, 16), SimulationBackend(models), seed=0)
        assert threaded.makespan == pytest.approx(event.makespan, rel=1e-9)

    def test_window_limits_in_flight(self):
        prog = cholesky_program(4, 16)
        models = _const_models(("DPOTRF", "DTRSM", "DSYRK", "DGEMM"))
        rt = ThreadedRuntime(4, mode="simulate", window=2)
        trace = rt.run(prog, models=models, seed=0)
        trace.validate()
        assert len(trace) == len(prog)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ThreadedRuntime(2, window=0)


class TestRaceCondition:
    """The paper's Fig. 5 scenario (see repro.experiments.race)."""

    def test_quiesce_guard_correct(self):
        out = run_scenario("quiesce")
        assert out.c_start == pytest.approx(CORRECT_C_START)
        assert out.makespan == pytest.approx(CORRECT_MAKESPAN)

    def test_adequate_sleep_guard_correct(self):
        out = run_scenario("sleep", sleep_time=10e-3)
        assert out.correct

    def test_inadequate_sleep_reproduces_fig5_race(self):
        # Sleep shorter than the dispatch delay: C misses its slot and is
        # placed after B — exactly the inaccuracy of Fig. 5.
        out = run_scenario("sleep", sleep_time=50e-6)
        assert out.c_start >= CORRECT_MAKESPAN - 1e-9
        assert out.makespan > CORRECT_MAKESPAN

    def test_no_guard_inflates_makespan(self):
        out = run_scenario("none")
        assert out.makespan > CORRECT_MAKESPAN

    def test_all_guards_complete_all_tasks(self):
        for guard in RACE_GUARDS:
            rt = ThreadedRuntime(2, mode="simulate", guard=guard, sleep_time=1e-4)
            trace = rt.run(fig5_program(), models=fig5_models(), seed=0)
            assert len(trace) == 3

    def test_guarded_qr_simulation_consistent(self):
        # On a real workload, the guarded threaded simulation must stay
        # close to the event-driven reference (same models, same worker
        # count); nondeterministic thread interleaving may reorder equal-
        # priority tasks, so allow a small tolerance.
        prog = qr_program(5, 16)
        models = _const_models(("DGEQRT", "DORMQR", "DTSQRT", "DTSMQR"))
        threaded = ThreadedRuntime(4, mode="simulate", guard="quiesce").run(
            prog, models=models, seed=0
        )
        sched = QuarkScheduler(4, insert_cost=0.0, dispatch_overhead=0.0,
                               completion_cost=0.0)
        event = sched.run(qr_program(5, 16), SimulationBackend(models), seed=0)
        assert threaded.makespan == pytest.approx(event.makespan, rel=0.05)


class TestFrontStealReWait:
    """White-box coverage of the sleep/yield guard's re-wait loop.

    During the guard pause a racing task with an earlier completion time
    can be inserted and steal the TEQ front; the pausing task must notice
    (its conditional pop fails) and go back to waiting rather than pop a
    queue position it no longer holds.
    """

    @pytest.mark.parametrize("guard", ["sleep", "yield"])
    def test_front_stolen_during_pause_causes_rewait(self, guard):
        import threading

        from repro.core import threaded as thr
        from repro.core.task import Program
        from repro.trace import Trace

        prog = Program("steal", meta={"nb": 1})
        for i in range(2):
            y = prog.registry.alloc(f"y{i}", 64)
            prog.add_task("K", [y.write()])

        rt = ThreadedRuntime(1, mode="simulate", guard=guard,
                             sleep_time=0.037, stall=None)
        state = thr._RunState(rt, prog, Trace(1), None, None, seed=0)
        state.teq.insert(0, 10.0)

        real_sleep = thr.time.sleep
        calls = []

        def stealing_sleep(seconds):
            # First guard pause only: task 1 (end 5.0) steals the front.
            calls.append(seconds)
            if len(calls) == 1:
                state.teq.insert(1, 5.0)

        # Patch the module's time.sleep so only the guard pause is faked;
        # the driving thread below never calls time.sleep itself.
        thr.time.sleep = stealing_sleep
        try:
            waiter = threading.Thread(
                target=lambda: state._wait_for_front(state.nodes[0], 10.0),
                daemon=True,
            )
            waiter.start()
            waiter.join(timeout=0.3)
            # The steal must have sent task 0 back to waiting, not popped.
            assert waiter.is_alive(), "waiter should re-wait behind the stolen front"
            assert state.teq.front() == 1

            # Retire the stealing task; task 0 regains the front and pops.
            state.clock.advance_to(5.0)
            state.teq.pop_front(1)
            waiter.join(timeout=5.0)
            assert not waiter.is_alive()
        finally:
            thr.time.sleep = real_sleep

        assert len(calls) >= 2, "guard pause must run again after the re-wait"
        assert state.clock.now() == 10.0
        assert len(state.teq) == 0
