"""Tests of the load generator: statistics, trace loading, live loops.

The percentile and trace-loading logic is pinned with plain unit tests;
the two driving disciplines then run for real — short bursts against an
in-process :class:`ReproServer` with an instant injected ``run_fn`` — and
the report document is checked field by field.  Retry behaviour is
exercised against a draining service (retriable 503s) and a dead port
(transport errors).
"""

from __future__ import annotations

import json

import pytest

from repro.service import (
    LOADGEN_SCHEMA,
    ReproServer,
    RunRequest,
    SimulationService,
    load_request_log,
    run_loadgen,
)
from repro.service.loadgen import percentile, summarize

from .test_router import fake_run
from .test_service import make_spec


@pytest.fixture
def live(request):
    """An instant-run server; yields (host, port)."""
    svc = SimulationService(workers=4, max_pending=16, run_fn=fake_run)
    server = ReproServer(svc, port=0)
    server.start()
    yield server.address

    server.shutdown(drain_timeout_s=5)
    server.wait_closed(5)


def trace(n: int = 4) -> list:
    return [RunRequest(spec=make_spec(seed=s)).to_document() for s in range(n)]


class TestPercentile:
    def test_nearest_rank_on_known_sample(self):
        values = [float(v) for v in range(1, 101)]  # 1..100
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 1.0) == 100.0
        assert percentile(values, 0.0) == 1.0

    def test_single_value_is_every_percentile(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestRequestLog:
    def test_bare_list_roundtrip(self, tmp_path):
        path = tmp_path / "log.json"
        path.write_text(json.dumps(trace(3)))
        docs = load_request_log(path)
        assert len(docs) == 3
        assert all(RunRequest.from_document(d) for d in docs)

    def test_batch_body_shape(self, tmp_path):
        path = tmp_path / "batch.json"
        path.write_text(json.dumps({"requests": trace(2)}))
        assert len(load_request_log(path)) == 2

    def test_client_sweep_file_shape(self, tmp_path):
        path = tmp_path / "sweep.json"
        responses = [
            {"spec": make_spec(seed=s).to_dict(), "ok": True} for s in range(2)
        ]
        path.write_text(
            json.dumps({"schema": "repro.client_sweep/v1", "responses": responses})
        )
        assert len(load_request_log(path)) == 2

    def test_error_documents_are_skipped_with_a_warning(self, tmp_path):
        # Regression: an in-slot error document (sweep_via_service records
        # failures without a spec) used to crash the loader with a bare
        # KeyError instead of being skipped.
        path = tmp_path / "sweep.json"
        responses = [
            {"spec": make_spec(seed=0).to_dict(), "ok": True},
            {"ok": False, "error": "timeout", "message": "deadline exceeded"},
            {"spec": make_spec(seed=1).to_dict(), "ok": True},
            {"ok": False, "error": "overloaded", "spec": None},
        ]
        path.write_text(
            json.dumps({"schema": "repro.client_sweep/v1", "responses": responses})
        )
        with pytest.warns(UserWarning, match="skipped 2 of 4"):
            docs = load_request_log(path)
        assert len(docs) == 2

    def test_sweep_with_no_replayable_spec_fails_fast(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(
            json.dumps(
                {
                    "schema": "repro.client_sweep/v1",
                    "responses": [{"ok": False, "error": "timeout"}],
                }
            )
        )
        with pytest.raises(ValueError, match="replayable spec"):
            load_request_log(path)

    def test_sweep_without_responses_list_rejected(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({"schema": "repro.client_sweep/v1"}))
        with pytest.raises(ValueError, match="responses"):
            load_request_log(path)

    def test_written_sweep_replays_through_the_loader(self, tmp_path):
        # Regression: ``repro client --metrics-out`` used to serialize with
        # ``default=str``, producing files whose specs failed validation at
        # replay.  The strict writer must produce a loadable file.
        from repro.service import write_client_sweep

        specs = [make_spec(seed=s) for s in range(3)]
        docs = [{"ok": True, "cached": False} for _ in specs]
        out = write_client_sweep(tmp_path / "sweep.json", specs, docs)
        loaded = load_request_log(out)
        assert len(loaded) == 3
        assert [d["spec"]["seed"] for d in loaded] == [0, 1, 2]

    def test_writer_refuses_non_json_native_values(self, tmp_path):
        # The old ``default=str`` path would have silently stringified this.
        from pathlib import Path as _P

        from repro.service import client_sweep_document, write_client_sweep

        specs = [make_spec(seed=0)]
        docs = [{"ok": True, "artifact": _P("/tmp/x")}]
        with pytest.raises(TypeError, match="not strictly JSON-serialisable"):
            write_client_sweep(tmp_path / "sweep.json", specs, docs)
        assert not (tmp_path / "sweep.json").exists()
        with pytest.raises(ValueError, match="one-to-one"):
            client_sweep_document(specs, [])

    def test_rejects_malformed_traces(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("[]")
        with pytest.raises(ValueError, match="empty"):
            load_request_log(empty)
        bad_doc = tmp_path / "bad.json"
        bad_doc.write_text(json.dumps([{"spec": {}}]))
        with pytest.raises(ValueError):
            load_request_log(bad_doc)
        not_a_trace = tmp_path / "scalar.json"
        not_a_trace.write_text("42")
        with pytest.raises(ValueError):
            load_request_log(not_a_trace)


class TestRunLoadgen:
    def test_open_loop_report(self, live):
        host, port = live
        report = run_loadgen(
            host, port, trace(), loop="open", rate=40.0, duration_s=0.5
        )
        assert report["schema"] == LOADGEN_SCHEMA
        assert report["loop"] == "open" and report["rate_target"] == 40.0
        # the schedule fixes the request count: rate x duration
        assert report["requests"] == 20
        assert report["failed"] == 0 and report["error_rate"] == 0.0
        assert report["status_counts"] == {"ok": 20}
        lat = report["latency_s"]
        assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
        assert report["per_shard"] is None  # plain daemon: no shard breakdown

    def test_closed_loop_report(self, live):
        host, port = live
        report = run_loadgen(
            host, port, trace(), loop="closed", concurrency=2, duration_s=0.3
        )
        assert report["loop"] == "closed" and report["concurrency"] == 2
        assert report["requests"] > 0 and report["failed"] == 0
        assert report["achieved_rps"] > 0

    def test_retries_ride_out_draining_then_fail(self, live):
        """Retriable 503s are retried; exhaustion counts as failed."""
        host, port = live
        # a second service on its own port, already draining
        svc = SimulationService(workers=1, run_fn=fake_run)
        server = ReproServer(svc, port=0)
        server.start()
        try:
            svc.drain(timeout_s=5)
            dhost, dport = server.address
            report = run_loadgen(
                dhost, dport, trace(1), loop="closed", concurrency=1,
                duration_s=0.2, max_retries=1, backoff_s=0.01,
                sleep=lambda s: None,
            )
            assert report["failed"] == report["requests"] > 0
            assert report["retries"] >= 1
            assert report["status_counts"].get("draining", 0) > 0
        finally:
            server.shutdown(drain_timeout_s=5)
            server.wait_closed(5)

    def test_transport_errors_are_counted(self):
        """A dead port yields transport failures, not a crash."""
        report = run_loadgen(
            "127.0.0.1", 1, trace(1), loop="closed", concurrency=1,
            duration_s=0.05, max_retries=0, backoff_s=0.01, sleep=lambda s: None,
        )
        assert report["requests"] > 0
        assert report["failed"] == report["requests"]
        assert report["transport_errors"] >= report["requests"]
        assert report["status_counts"].get("transport", 0) > 0

    def test_validates_arguments(self, live):
        host, port = live
        with pytest.raises(ValueError, match="at least one"):
            run_loadgen(host, port, [], loop="closed", duration_s=0.1)
        with pytest.raises(ValueError, match="rate"):
            run_loadgen(host, port, trace(1), loop="open", duration_s=0.1)
        with pytest.raises(ValueError, match="loop"):
            run_loadgen(host, port, trace(1), loop="sideways", duration_s=0.1)
        with pytest.raises(ValueError, match="duration"):
            run_loadgen(host, port, trace(1), loop="closed", duration_s=0.0)

    def test_summary_renders_every_section(self, live):
        host, port = live
        report = run_loadgen(
            host, port, trace(), loop="open", rate=20.0, duration_s=0.3
        )
        text = summarize(report)
        assert "loadgen [open]" in text
        assert "latency p50" in text
        assert "requests" in text
