"""Heap-invariant tests for the Task Execution Queue under interleaved
push/pop traffic, including the notify-only-on-front-change fast path.

The TEQ's contract (paper §V-C): whatever the real-time interleaving of
inserts, tasks leave the queue in simulated-completion-time order, ties
broken by insertion sequence.  These tests drive deterministic interleaved
single-thread traffic and a multi-threaded waiter pile-up to check the
protocol still wakes everyone after the insert-notify optimization.
"""

import heapq
import threading

import numpy as np
import pytest

from repro.core.teq import TaskExecutionQueue


def _drain(teq: TaskExecutionQueue):
    out = []
    while True:
        front = teq.front()
        if front is None:
            return out
        end = teq.pop_front(front)
        out.append((front, end))


class TestInterleavedPushPop:
    def test_pops_in_completion_time_order(self):
        teq = TaskExecutionQueue()
        rng = np.random.default_rng(42)
        reference = []  # mirror heap: (end, seq, tid)
        seq = 0
        next_tid = 0
        popped = []
        # Interleave 500 operations: 60% inserts, 40% front pops.
        for _ in range(500):
            if reference and rng.random() < 0.4:
                end, _, tid = heapq.heappop(reference)
                assert teq.front() == tid
                assert teq.pop_front(tid) == end
                popped.append((tid, end))
            else:
                end = float(rng.integers(0, 50))  # many ties -> seq ordering
                teq.insert(next_tid, end)
                heapq.heappush(reference, (end, seq, next_tid))
                seq += 1
                next_tid += 1
        drained = _drain(teq)
        # The final drain empties a static queue: completion times must be
        # non-decreasing.  (The interleaved pops above are each checked
        # against the mirror heap at the moment they happen — the *global*
        # pop sequence is not sorted, since later inserts may complete
        # earlier than tasks already popped.)
        drain_ends = [end for _, end in drained]
        assert drain_ends == sorted(drain_ends)
        popped.extend(drained)
        # Ties preserve insertion order across the whole run.
        seen_at_end = {}
        for tid, end in popped:
            if end in seen_at_end:
                assert tid > seen_at_end[end], "FIFO tie-break violated"
            seen_at_end[end] = tid
        assert len(popped) == next_tid

    def test_front_tracks_minimum_after_every_operation(self):
        teq = TaskExecutionQueue()
        rng = np.random.default_rng(7)
        alive = {}
        for tid in range(100):
            end = float(rng.random())
            teq.insert(tid, end)
            alive[tid] = end
            best = min(alive, key=lambda t: (alive[t], t))
            assert teq.front() == best
            assert teq.front_end_time() == alive[best]
            if rng.random() < 0.5:
                teq.pop_front(best)
                del alive[best]

    def test_non_front_pop_rejected(self):
        teq = TaskExecutionQueue()
        teq.insert(1, 1.0)
        teq.insert(2, 2.0)
        with pytest.raises(RuntimeError, match="not at the front"):
            teq.pop_front(2)
        assert teq.pop_front(1) == 1.0

    def test_len_and_snapshot_sorted(self):
        teq = TaskExecutionQueue()
        for tid, end in ((3, 30.0), (1, 10.0), (2, 20.0)):
            teq.insert(tid, end)
        assert len(teq) == 3
        assert teq.snapshot() == [(1, 10.0), (2, 20.0), (3, 30.0)]


class TestWaiterWakeups:
    def test_insert_behind_front_does_not_strand_waiters(self):
        """Waiters for later tasks must still drain after non-front inserts.

        The insert fast path only broadcasts when the front changes; this
        pile-up (every waiter blocked, inserts arriving in both orders)
        deadlocks within the timeout if a required wake-up is skipped.
        """
        teq = TaskExecutionQueue()
        n = 24
        order = []
        lock = threading.Lock()

        def waiter(tid: int):
            end = teq.wait_pop_front(tid, timeout=10.0)
            with lock:
                order.append((tid, end))

        threads = [threading.Thread(target=waiter, args=(tid,)) for tid in range(n)]
        for t in threads:
            t.start()
        # Insert in an order that alternates front-changing and back inserts.
        for tid in range(n - 1, -1, -1) if n % 2 else list(range(n // 2, n)) + list(range(n // 2)):
            teq.insert(tid, float(tid))
        for t in threads:
            t.join(timeout=10.0)
            assert not t.is_alive(), "TEQ waiter stranded — missed wake-up"
        assert [tid for tid, _ in order] == list(range(n))
        assert all(end == float(tid) for tid, end in order)

    def test_concurrent_inserts_then_ordered_drain(self):
        teq = TaskExecutionQueue()
        n_threads, per_thread = 8, 50
        barrier = threading.Barrier(n_threads)

        def inserter(base: int):
            rng = np.random.default_rng(base)
            barrier.wait()
            for i in range(per_thread):
                teq.insert(base * per_thread + i, float(rng.random()))

        threads = [threading.Thread(target=inserter, args=(b,)) for b in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(teq) == n_threads * per_thread
        drained = _drain(teq)
        ends = [end for _, end in drained]
        assert ends == sorted(ends)
        assert len(drained) == n_threads * per_thread
