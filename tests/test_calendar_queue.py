"""Invariant tests for the array engine's calendar queue.

Mirror of ``tests/test_teq_invariants.py`` for the future-event set that
replaces the binary heap inside :class:`repro.schedulers.array_engine`:
whatever the interleaving of pushes and pops — including pushes into the
past, many-tie traffic, and populations that cross the grow/shrink resize
thresholds — events leave in ``(time, push sequence)`` order, exactly the
``(t, seq)`` heap discipline the object engine uses.  That discipline is
what makes array-engine traces byte-identical, so these tests drive the
queue against a mirror heap at every step.
"""

import heapq

import numpy as np
import pytest

from repro.core.soa import CalendarQueue


def _drain(q: CalendarQueue):
    out = []
    while len(q):
        out.append(q.pop())
    return out


class TestOrdering:
    def test_pops_in_time_then_fifo_order(self):
        q = CalendarQueue()
        rng = np.random.default_rng(42)
        reference = []  # mirror heap: (t, seq, payload)
        seq = 0
        popped = []
        # Interleave 800 operations: 60% pushes (integer times force many
        # ties), 40% pops checked against the mirror at the moment they
        # happen.
        for _ in range(800):
            if reference and rng.random() < 0.4:
                t, _, payload = heapq.heappop(reference)
                assert q.front() == (t, payload)
                assert q.pop() == (t, payload)
                popped.append((t, payload))
            else:
                t = float(rng.integers(0, 50))
                q.push(t, seq)
                heapq.heappush(reference, (t, seq, seq))
                seq += 1
        drained = _drain(q)
        times = [t for t, _ in drained]
        assert times == sorted(times)
        popped.extend(drained)
        assert len(popped) == seq
        # Ties pop in push order across the whole run.
        seen_at = {}
        for t, payload in popped:
            if t in seen_at:
                assert payload > seen_at[t], "FIFO tie-break violated"
            seen_at[t] = payload

    def test_push_into_the_past_rewinds_the_scan(self):
        # Grow the calendar to several buckets around late times, then push
        # an earlier event: the lap scan must rewind and still pop it first.
        q = CalendarQueue(grow_threshold=4)
        for i in range(32):
            q.push(100.0 + i, i)
        assert q.n_buckets > 1
        q.pop()  # advances the scan cursor to t=100
        q.push(1.5, 999)
        assert q.pop() == (1.5, 999)
        remaining = [t for t, _ in _drain(q)]
        assert remaining == sorted(remaining)

    def test_front_matches_pop_without_removal(self):
        q = CalendarQueue()
        rng = np.random.default_rng(7)
        for payload in range(200):
            q.push(float(rng.random()), payload)
        while len(q):
            head = q.front()
            assert len(q) == len(q.snapshot())
            assert q.pop() == head

    def test_snapshot_is_pop_order(self):
        q = CalendarQueue(grow_threshold=4)
        rng = np.random.default_rng(11)
        for payload in range(100):
            q.push(float(rng.integers(0, 10)), payload)
        assert q.snapshot() == _drain(q)


class TestResize:
    def test_grow_and_shrink_preserve_contents(self):
        q = CalendarQueue(grow_threshold=8)
        rng = np.random.default_rng(3)
        expected = []
        for payload in range(500):
            t = float(rng.random() * 1e-3)
            q.push(t, payload)
            expected.append((t, payload))
        assert q.n_buckets > 1  # grew past the threshold
        # Drain halfway: the population collapse must shrink the calendar
        # back toward a single bucket without losing or reordering events.
        out = [q.pop() for _ in range(400)]
        assert q.n_buckets < 500
        out.extend(_drain(q))
        expected.sort(key=lambda e: (e[0], e[1]))
        assert out == expected
        assert q.n_buckets == 1

    def test_all_equal_times_survive_resize(self):
        # Degenerate span: every event at the same instant must not divide
        # the bucket width to zero, and must drain in push order.
        q = CalendarQueue(grow_threshold=4)
        for payload in range(64):
            q.push(5.0, payload)
        assert _drain(q) == [(5.0, p) for p in range(64)]

    def test_huge_time_span(self):
        q = CalendarQueue(grow_threshold=4)
        times = [1e-9, 1.0, 1e6, 3.5e-7, 2e6, 0.25, 7e-9]
        for payload, t in enumerate(times):
            q.push(t, payload)
        drained = _drain(q)
        assert [t for t, _ in drained] == sorted(times)


class TestValidation:
    def test_constructor_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="n_buckets"):
            CalendarQueue(n_buckets=0)
        with pytest.raises(ValueError, match="widths must be positive"):
            CalendarQueue(bucket_width=0.0)
        with pytest.raises(ValueError, match="grow_threshold"):
            CalendarQueue(grow_threshold=1)

    def test_non_finite_times_rejected(self):
        q = CalendarQueue()
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="finite"):
                q.push(bad, 0)

    def test_empty_pop_and_front_raise(self):
        q = CalendarQueue()
        with pytest.raises(IndexError):
            q.pop()
        with pytest.raises(IndexError):
            q.front()
        q.push(1.0, 1)
        q.pop()
        with pytest.raises(IndexError):
            q.pop()
