"""Differential testing: the threaded runtime against the discrete engine.

The paper's two execution paths must tell the same story about the same
program.  The discrete-event engine is the reference semantics; the
threaded runtime (§V-D) replays those semantics on real OS threads.  With
the engine's virtual runtime overheads zeroed and deterministic per-kernel
durations, the two become *exactly* comparable: on randomly generated
programs (Hypothesis) both runtimes must produce verified traces with the
identical task assignment order statistics — every task's virtual
``(start, end)`` interval and the resulting start-order sequence — even
though the threaded runtime's worker *lane* for a task is an arbitrary race
outcome.

The worker column itself is pinned only where it is well-defined: with one
worker the whole schedule serialises and the canonicalized traces must
agree event-for-event.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simulator import simulate
from repro.core.threaded import ThreadedRuntime
from repro.experiments.stress import random_program
from repro.kernels.distributions import ConstantModel
from repro.kernels.timing import KernelModelSet
from repro.schedulers import make_scheduler
from repro.trace.compare import canonicalize_workers
from repro.trace.textio import dumps_trace
from repro.trace.verify import verify_trace

KERNELS = ("KA", "KB", "KC")

#: Engine overheads that the threaded runtime does not model; zeroing them
#: makes the engine's virtual clock exactly reproducible by the replay.
ZERO_COSTS = dict(insert_cost=0.0, dispatch_overhead=0.0, completion_cost=0.0)


def constant_models(durations) -> KernelModelSet:
    return KernelModelSet(
        models={k: ConstantModel(d) for k, d in zip(KERNELS, durations)},
        family="constant",
    )


def flat_program(n_tasks: int, n_refs: int, seed: int):
    """A seeded random program with priorities flattened to zero.

    Priority hints are honoured at *different points* by the two runtimes:
    the engine's master dispatches a ready task to an idle worker eagerly at
    insertion time (before later, higher-priority tasks exist), while the
    threaded runtime's workers claim from the priority queue after insertion.
    Both are legal QUARK behaviours, so priority-laden programs may schedule
    differently; with uniform priorities both collapse to FIFO over ready
    tasks — the shared semantics this differential test pins.
    """
    prog = random_program(n_tasks, n_refs=n_refs, seed=seed)
    for task in prog.tasks:
        task.priority = 0
    return prog


def assignment_order(trace):
    """The worker-free schedule: tasks in assignment order with their
    virtual intervals.  This is the projection both runtimes must agree on —
    which OS thread hosted a task is a race outcome, *when* it ran is not."""
    return [
        (e.task_id, e.kernel, round(e.start, 9), round(e.end, 9), e.width)
        for e in sorted(trace.events, key=lambda e: (e.start, e.end, e.task_id))
    ]


def event_lines(trace) -> str:
    """Canonicalized trace bytes without the meta header (the header names
    the producing runtime, which is exactly what must be allowed to differ)."""
    return "\n".join(
        line
        for line in dumps_trace(canonicalize_workers(trace)).splitlines()
        if not line.startswith("#")
    )


program_params = st.tuples(
    st.integers(min_value=1, max_value=16),  # n_tasks
    st.integers(min_value=3, max_value=6),  # n_refs
    st.integers(min_value=0, max_value=10_000),  # program seed
)
duration_sets = st.tuples(
    st.sampled_from([0.25, 0.5, 1.0]),
    st.sampled_from([0.75, 1.25, 2.0]),
    st.sampled_from([0.375, 1.5, 3.0]),
)


@settings(max_examples=25, deadline=None)
@given(
    params=program_params,
    durations=duration_sets,
    n_workers=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=3),
)
def test_threaded_matches_zero_cost_engine_assignment_order(
    params, durations, n_workers, seed
):
    n_tasks, n_refs, prog_seed = params
    models = constant_models(durations)

    scheduler = make_scheduler("quark", n_workers, **ZERO_COSTS)
    engine_trace = simulate(
        flat_program(n_tasks, n_refs, prog_seed),
        scheduler,
        models,
        seed=seed,
    )
    threaded_trace = ThreadedRuntime(n_workers, mode="simulate", guard="quiesce").run(
        flat_program(n_tasks, n_refs, prog_seed),
        models=models,
        seed=seed,
    )

    # Both runtimes produced a legal execution of the program...
    verify_trace(flat_program(n_tasks, n_refs, prog_seed), engine_trace)
    verify_trace(flat_program(n_tasks, n_refs, prog_seed), threaded_trace)
    # ...and the identical one: same tasks, same virtual intervals, same
    # assignment order.
    assert assignment_order(engine_trace) == assignment_order(threaded_trace)

    if n_workers == 1:
        # Fully serialised: even the lane assignment is determined, so the
        # canonicalized traces must agree byte for byte.
        assert event_lines(engine_trace) == event_lines(threaded_trace)


@settings(max_examples=10, deadline=None)
@given(
    params=program_params,
    scheduler_name=st.sampled_from(["quark", "starpu", "ompss"]),
    n_workers=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=3),
)
def test_every_scheduler_and_the_threaded_runtime_verify_and_are_seed_pure(
    params, scheduler_name, n_workers, seed
):
    """All three front-ends and the threaded replay: legal and reproducible.

    Cross-runtime equality is a quark-semantics property (the threaded
    runtime implements the QUARK protocol); what every scheduler must still
    satisfy is that its trace verifies against the program and that rerunning
    the same seed reproduces the same bytes.
    """
    n_tasks, n_refs, prog_seed = params
    models = constant_models((0.5, 1.25, 2.0))

    def engine_run():
        return simulate(
            random_program(n_tasks, n_refs=n_refs, seed=prog_seed),
            make_scheduler(scheduler_name, n_workers),
            models,
            seed=seed,
        )

    trace_a, trace_b = engine_run(), engine_run()
    verify_trace(random_program(n_tasks, n_refs=n_refs, seed=prog_seed), trace_a)
    assert dumps_trace(trace_a) == dumps_trace(trace_b)  # seed-pure

    threaded = ThreadedRuntime(n_workers, mode="simulate", guard="quiesce").run(
        random_program(n_tasks, n_refs=n_refs, seed=prog_seed), models=models, seed=seed
    )
    verify_trace(random_program(n_tasks, n_refs=n_refs, seed=prog_seed), threaded)
    # Constant models: the engine and the replay agree on every duration.
    dur = {e.task_id: round(e.end - e.start, 9) for e in trace_a.events}
    for e in threaded.events:
        assert round(e.end - e.start, 9) == dur[e.task_id]
