"""Unit tests for the task/data model (repro.core.task)."""

import pytest

from repro.core.task import (
    Access,
    AccessMode,
    DataRegistry,
    Program,
    TaskSpec,
    renumber,
)


class TestAccessMode:
    def test_read_reads_not_writes(self):
        assert AccessMode.READ.reads and not AccessMode.READ.writes

    def test_write_writes_not_reads(self):
        assert AccessMode.WRITE.writes and not AccessMode.WRITE.reads

    def test_rw_reads_and_writes(self):
        assert AccessMode.RW.reads and AccessMode.RW.writes

    def test_value_neither(self):
        assert not AccessMode.VALUE.reads and not AccessMode.VALUE.writes


class TestDataRegistry:
    def test_alloc_assigns_unique_addresses(self):
        reg = DataRegistry()
        a = reg.alloc("a", 100, key=("a",))
        b = reg.alloc("b", 100, key=("b",))
        assert a.addr != b.addr

    def test_addresses_do_not_overlap(self):
        reg = DataRegistry()
        a = reg.alloc("a", 1000, key=("a",))
        b = reg.alloc("b", 1000, key=("b",))
        assert b.addr >= a.addr + a.size

    def test_same_key_returns_same_ref(self):
        reg = DataRegistry()
        a1 = reg.alloc("A[0,0]", 64, key=("A", 0, 0))
        a2 = reg.alloc("A[0,0]", 64, key=("A", 0, 0))
        assert a1 is a2

    def test_size_mismatch_rejected(self):
        reg = DataRegistry()
        reg.alloc("a", 64, key=("a",))
        with pytest.raises(ValueError, match="re-registered"):
            reg.alloc("a", 128, key=("a",))

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            DataRegistry().alloc("a", 0)

    def test_get_and_contains(self):
        reg = DataRegistry()
        ref = reg.alloc("a", 64, key=("a", 1))
        assert ("a", 1) in reg
        assert reg.get(("a", 1)) is ref
        assert ("b",) not in reg

    def test_len_and_total_bytes(self):
        reg = DataRegistry()
        reg.alloc("a", 64, key=("a",))
        reg.alloc("b", 128, key=("b",))
        assert len(reg) == 2
        assert reg.total_bytes == 192

    def test_access_helpers(self):
        reg = DataRegistry()
        ref = reg.alloc("a", 64)
        assert ref.read().mode is AccessMode.READ
        assert ref.write().mode is AccessMode.WRITE
        assert ref.rw().mode is AccessMode.RW
        assert ref.read().ref is ref


class TestTaskSpec:
    def _ref(self, name="x"):
        return DataRegistry().alloc(name, 64)

    def test_reads_and_writes_partition(self):
        reg = DataRegistry()
        a, b, c = (reg.alloc(n, 64, key=(n,)) for n in "abc")
        spec = TaskSpec("K", (a.read(), b.write(), c.rw()))
        assert set(spec.reads) == {a, c}
        assert set(spec.writes) == {b, c}

    def test_footprint_counts_each_ref_once(self):
        ref = self._ref()
        spec = TaskSpec("K", (ref.read(), Access(ref, AccessMode.WRITE)))
        assert spec.footprint_bytes == 64

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec("K", (self._ref().read(),), flops=-1.0)

    def test_non_access_args_rejected(self):
        with pytest.raises(TypeError):
            TaskSpec("K", (self._ref(),))  # type: ignore[arg-type]

    def test_describe_format(self):
        reg = DataRegistry()
        a = reg.alloc("A[0,0]", 64, key=("A", 0, 0))
        t = reg.alloc("T[0,0]", 64, key=("T", 0, 0))
        spec = TaskSpec("DGEQRT", (a.rw(), t.write()))
        assert spec.describe() == "dgeqrt(A[0,0]^rw, T[0,0]^w)"


class TestProgram:
    def test_add_assigns_serial_ids(self):
        prog = Program("p")
        x = prog.registry.alloc("x", 64)
        t0 = prog.add_task("K", [x.write()])
        t1 = prog.add_task("K", [x.read()])
        assert (t0.task_id, t1.task_id) == (0, 1)

    def test_double_add_rejected(self):
        prog = Program("p")
        x = prog.registry.alloc("x", 64)
        t = prog.add_task("K", [x.write()])
        with pytest.raises(ValueError, match="already belongs"):
            prog.add(t)

    def test_iteration_preserves_order(self):
        prog = Program("p")
        x = prog.registry.alloc("x", 64)
        for _ in range(5):
            prog.add_task("K", [x.rw()])
        assert [t.task_id for t in prog] == list(range(5))

    def test_total_flops(self):
        prog = Program("p")
        x = prog.registry.alloc("x", 64)
        prog.add_task("K", [x.rw()], flops=10.0)
        prog.add_task("K", [x.rw()], flops=5.0)
        assert prog.total_flops == 15.0

    def test_kernel_counts_and_order(self):
        prog = Program("p")
        x = prog.registry.alloc("x", 64)
        prog.add_task("B", [x.rw()])
        prog.add_task("A", [x.rw()])
        prog.add_task("B", [x.rw()])
        assert prog.kernel_counts() == {"B": 2, "A": 1}
        assert prog.kernels() == ("B", "A")

    def test_params_recorded(self):
        prog = Program("p")
        x = prog.registry.alloc("x", 64)
        t = prog.add_task("K", [x.rw()], k=3, i=7)
        assert t.params == {"k": 3, "i": 7}

    def test_describe_limit(self):
        prog = Program("p")
        x = prog.registry.alloc("x", 64)
        for _ in range(4):
            prog.add_task("K", [x.rw()])
        text = prog.describe(limit=2)
        assert "F0" in text and "F1" in text and "(2 more)" in text

    def test_getitem(self):
        prog = Program("p")
        x = prog.registry.alloc("x", 64)
        t = prog.add_task("K", [x.rw()])
        assert prog[0] is t


class TestRenumber:
    def test_renumber_fresh_ids(self):
        prog = Program("p")
        x = prog.registry.alloc("x", 64)
        prog.add_task("K", [x.rw()])
        prog.add_task("L", [x.rw()])
        clones = renumber(reversed(prog.tasks))
        assert [c.task_id for c in clones] == [0, 1]
        assert [c.kernel for c in clones] == ["L", "K"]

    def test_renumber_copies_params(self):
        prog = Program("p")
        x = prog.registry.alloc("x", 64)
        prog.add_task("K", [x.rw()], k=1)
        clone = renumber(prog.tasks)[0]
        clone.params["k"] = 99
        assert prog[0].params["k"] == 1
