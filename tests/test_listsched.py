"""Tests for the static list-scheduling baseline."""

import pytest

from repro.algorithms import cholesky_program, qr_program
from repro.core.task import Program
from repro.dag import build_dag, list_schedule, makespan_lower_bound, upward_ranks
from repro.dag.build import simple_dag


def _chain(n, cost_kernel="K"):
    prog = Program("chain")
    x = prog.registry.alloc("x", 64)
    for _ in range(n):
        prog.add_task(cost_kernel, [x.rw()])
    return prog


def _fan(n):
    prog = Program("fan")
    src = prog.registry.alloc("src", 64)
    prog.add_task("ROOT", [src.write()])
    for i in range(n):
        y = prog.registry.alloc(f"y{i}", 64, key=(f"y{i}",))
        prog.add_task("LEAF", [src.read(), y.write()])
    return prog


class TestUpwardRanks:
    def test_chain_ranks_decrease(self):
        prog = _chain(4)
        dag = simple_dag(build_dag(prog))
        ranks = upward_ranks(dag, {i: 1.0 for i in range(4)})
        assert [ranks[i] for i in range(4)] == [4.0, 3.0, 2.0, 1.0]

    def test_fan_root_rank(self):
        prog = _fan(5)
        dag = simple_dag(build_dag(prog))
        costs = {0: 2.0, **{i: 1.0 for i in range(1, 6)}}
        ranks = upward_ranks(dag, costs)
        assert ranks[0] == 3.0


class TestListSchedule:
    def test_chain_serial(self):
        sched = list_schedule(_chain(5), 4, {"K": 1.0})
        assert sched.makespan == pytest.approx(5.0)
        sched.trace.validate()

    def test_fan_parallel(self):
        sched = list_schedule(_fan(8), 4, {"ROOT": 1.0, "LEAF": 1.0})
        assert sched.makespan == pytest.approx(3.0)  # root + 2 leaf rounds

    def test_dependences_respected(self):
        prog = qr_program(4, 16)
        costs = {k: 1.0 for k in ("DGEQRT", "DORMQR", "DTSQRT", "DTSMQR")}
        sched = list_schedule(prog, 4, costs)
        sched.trace.validate()
        ends = {e.task_id: e.end for e in sched.trace.events}
        starts = {e.task_id: e.start for e in sched.trace.events}
        for src, dst in simple_dag(build_dag(prog)).edges():
            assert starts[dst] >= ends[src] - 1e-12

    def test_all_tasks_scheduled(self):
        prog = cholesky_program(5, 16)
        costs = {"DPOTRF": 0.5, "DTRSM": 1.0, "DSYRK": 1.0, "DGEMM": 2.0}
        sched = list_schedule(prog, 8, costs)
        assert len(sched.trace) == len(prog)

    def test_never_beats_lower_bound(self):
        prog = cholesky_program(6, 16)
        costs = {"DPOTRF": 0.5, "DTRSM": 1.0, "DSYRK": 1.0, "DGEMM": 2.0}
        for p in (1, 2, 4, 16):
            sched = list_schedule(prog, p, costs)
            bound = makespan_lower_bound(build_dag(prog), p, costs)
            assert sched.makespan >= bound - 1e-9

    def test_single_worker_equals_total_work(self):
        prog = _fan(6)
        sched = list_schedule(prog, 1, {"ROOT": 1.0, "LEAF": 2.0})
        assert sched.makespan == pytest.approx(13.0)

    def test_wide_task_gang_placed(self):
        prog = Program("wide")
        x = prog.registry.alloc("x", 64)
        spec = prog.add_task("W", [x.write()])
        spec.width = 3
        sched = list_schedule(prog, 4, {"W": 1.0})
        ev = sched.trace.events[0]
        assert ev.width == 3
        sched.trace.validate()

    def test_wide_task_beyond_machine_rejected(self):
        prog = Program("wide")
        x = prog.registry.alloc("x", 64)
        spec = prog.add_task("W", [x.write()])
        spec.width = 3
        with pytest.raises(ValueError, match="wider"):
            list_schedule(prog, 2, {"W": 1.0})

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            list_schedule(_chain(2), 0, {"K": 1.0})
        with pytest.raises(ValueError):
            list_schedule(_chain(2), 2, {"K": 0.0})
        with pytest.raises(KeyError):
            list_schedule(_chain(2), 2, {"OTHER": 1.0})

    def test_prioritises_critical_path(self):
        # Chain of expensive tasks + independent cheap ones on one worker:
        # list scheduling must start the chain first.
        prog = Program("mix")
        x = prog.registry.alloc("x", 64, key=("x",))
        prog.add_task("BIG", [x.rw()])
        prog.add_task("BIG", [x.rw()])
        y = prog.registry.alloc("y", 64, key=("y",))
        prog.add_task("SMALL", [y.write()])
        sched = list_schedule(prog, 1, {"BIG": 5.0, "SMALL": 1.0})
        order = [e.task_id for e in sorted(sched.trace.events)]
        assert order[0] == 0  # head of the critical chain first

    def test_static_prediction_close_to_dynamic_at_saturation(self):
        """Sanity: at large parallel slack the static makespan is within a
        reasonable factor of the dynamic simulated one."""
        from repro.core.simbackend import SimulationBackend
        from repro.kernels.distributions import ConstantModel
        from repro.kernels.timing import KernelModelSet
        from repro.schedulers import QuarkScheduler

        prog = cholesky_program(8, 16)
        costs = {"DPOTRF": 1e-3, "DTRSM": 1e-3, "DSYRK": 1e-3, "DGEMM": 1e-3}
        static = list_schedule(prog, 8, costs)
        models = KernelModelSet(models={k: ConstantModel(v) for k, v in costs.items()})
        dynamic = QuarkScheduler(8, insert_cost=0.0, dispatch_overhead=0.0,
                                 completion_cost=0.0).run(
            cholesky_program(8, 16), SimulationBackend(models), seed=0
        )
        assert static.makespan <= dynamic.makespan * 1.1
