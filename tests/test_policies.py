"""Tests for ready-queue disciplines and the history performance model."""

import pytest

from repro.core.task import DataRegistry, TaskSpec
from repro.schedulers.base import TaskNode
from repro.schedulers.policies import (
    FifoQueue,
    HistoryPerfModel,
    LifoQueue,
    PriorityQueue,
    WorkStealingDeques,
)


def _node(task_id, priority=0, kernel="K"):
    ref = DataRegistry().alloc("x", 64)
    spec = TaskSpec(kernel, (ref.rw(),), priority=priority)
    spec.task_id = task_id
    return TaskNode(spec)


class TestFifo:
    def test_order(self):
        q = FifoQueue()
        for i in range(3):
            q.push(_node(i))
        assert [q.pop().task_id for _ in range(3)] == [0, 1, 2]

    def test_empty_pop_none(self):
        assert FifoQueue().pop() is None

    def test_len(self):
        q = FifoQueue()
        q.push(_node(0))
        assert len(q) == 1


class TestLifo:
    def test_order(self):
        q = LifoQueue()
        for i in range(3):
            q.push(_node(i))
        assert [q.pop().task_id for _ in range(3)] == [2, 1, 0]

    def test_empty_pop_none(self):
        assert LifoQueue().pop() is None


class TestPriority:
    def test_higher_priority_first(self):
        q = PriorityQueue()
        q.push(_node(0, priority=1))
        q.push(_node(1, priority=5))
        q.push(_node(2, priority=3))
        assert [q.pop().task_id for _ in range(3)] == [1, 2, 0]

    def test_fifo_within_priority(self):
        q = PriorityQueue()
        for i in range(4):
            q.push(_node(i, priority=2))
        assert [q.pop().task_id for _ in range(4)] == [0, 1, 2, 3]

    def test_empty_pop_none(self):
        assert PriorityQueue().pop() is None


class TestWorkStealing:
    def test_owner_lifo(self):
        ws = WorkStealingDeques(2)
        ws.push(0, _node(0))
        ws.push(0, _node(1))
        assert ws.pop_local(0).task_id == 1

    def test_thief_steals_oldest(self):
        ws = WorkStealingDeques(2)
        ws.push(0, _node(0))
        ws.push(0, _node(1))
        assert ws.steal(1).task_id == 0

    def test_steal_from_richest(self):
        ws = WorkStealingDeques(3)
        ws.push(0, _node(0))
        ws.push(1, _node(1))
        ws.push(1, _node(2))
        assert ws.steal(2).task_id == 1  # worker 1 is richest; oldest task

    def test_no_self_steal(self):
        ws = WorkStealingDeques(2)
        ws.push(1, _node(0))
        assert ws.steal(1) is None

    def test_pop_falls_back_to_steal(self):
        ws = WorkStealingDeques(2)
        ws.push(0, _node(0))
        assert ws.pop(1).task_id == 0

    def test_len_and_queue_length(self):
        ws = WorkStealingDeques(2)
        ws.push(0, _node(0))
        ws.push(1, _node(1))
        assert len(ws) == 2
        assert ws.queue_length(0) == 1

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            WorkStealingDeques(0)


class TestHistoryPerfModel:
    def test_default_before_observations(self):
        m = HistoryPerfModel(default=5e-5)
        assert m.expected("DGEMM") == 5e-5
        assert m.observations("DGEMM") == 0

    def test_running_mean(self):
        m = HistoryPerfModel()
        for d in (1.0, 2.0, 3.0):
            m.update("K", d)
        assert m.expected("K") == pytest.approx(2.0)
        assert m.observations("K") == 3

    def test_kernels_independent(self):
        m = HistoryPerfModel()
        m.update("A", 1.0)
        m.update("B", 9.0)
        assert m.expected("A") == 1.0
        assert m.expected("B") == 9.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            HistoryPerfModel().update("K", -1.0)

    def test_nonpositive_default_rejected(self):
        with pytest.raises(ValueError):
            HistoryPerfModel(default=0.0)
