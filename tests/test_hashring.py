"""Property tests of the consistent-hash ring behind the fleet router.

The fleet's correctness rests on three ring properties: routing is a pure
function of membership (so any two routers agree), every key lands on a
live shard, and excluding/removing a shard remaps *only* that shard's keys
(so failover retry and mark-down disturb nothing else).  Hypothesis
explores those over arbitrary shard sets and key sets; the unit tests pin
the exact edge cases (single shard, empty ring, bogus membership edits).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import HashRing, NoLiveShard

shard_ids = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1,
        max_size=12,
    ),
    min_size=1,
    max_size=8,
    unique=True,
)
keys = st.lists(st.text(min_size=0, max_size=40), min_size=1, max_size=60)


class TestRingProperties:
    @given(shards=shard_ids, key_set=keys)
    @settings(max_examples=50, deadline=None)
    def test_routing_is_deterministic_across_instances(self, shards, key_set):
        """Two rings built from the same membership agree on every key."""
        a = HashRing(shards, vnodes=16)
        b = HashRing(reversed(shards), vnodes=16)  # insertion order is irrelevant
        for key in key_set:
            assert a.route(key) == b.route(key)

    @given(shards=shard_ids, key_set=keys)
    @settings(max_examples=50, deadline=None)
    def test_every_key_maps_to_a_member_shard(self, shards, key_set):
        ring = HashRing(shards, vnodes=16)
        for key in key_set:
            assert ring.route(key) in ring.shards

    @given(shards=shard_ids, key_set=keys, victim_idx=st.integers(min_value=0))
    @settings(max_examples=50, deadline=None)
    def test_removal_remaps_only_the_dead_shards_keys(
        self, shards, key_set, victim_idx
    ):
        """Keys not owned by the removed shard keep their home."""
        ring = HashRing(shards, vnodes=16)
        victim = shards[victim_idx % len(shards)]
        before = {key: ring.route(key) for key in key_set}

        survivor = HashRing(shards, vnodes=16)
        survivor.remove(victim)
        for key, home in before.items():
            if home == victim:
                if len(shards) > 1:
                    assert survivor.route(key) != victim
            else:
                assert survivor.route(key) == home

    @given(shards=shard_ids, key_set=keys, victim_idx=st.integers(min_value=0))
    @settings(max_examples=50, deadline=None)
    def test_exclusion_equals_removal(self, shards, key_set, victim_idx):
        """route(exclude={s}) is exactly the ring rebuilt without s.

        This identity is what lets the router fail over without touching
        the ring: the retry target after mark-down equals the steady-state
        owner once the shard is gone.
        """
        if len(shards) < 2:
            return
        ring = HashRing(shards, vnodes=16)
        victim = shards[victim_idx % len(shards)]
        rebuilt = HashRing([s for s in shards if s != victim], vnodes=16)
        for key in key_set:
            assert ring.route(key, exclude={victim}) == rebuilt.route(key)

    @given(shards=shard_ids, key_set=keys, victim_idx=st.integers(min_value=0))
    @settings(max_examples=50, deadline=None)
    def test_spread_exclusion_equals_removal(self, shards, key_set, victim_idx):
        """spread(keys, exclude={s}) equals spread over the ring rebuilt
        without s — the same identity route() guarantees, lifted to the
        balance histogram the router's stats endpoint reports.
        """
        if len(shards) < 2:
            return
        ring = HashRing(shards, vnodes=16)
        victim = shards[victim_idx % len(shards)]
        rebuilt = HashRing([s for s in shards if s != victim], vnodes=16)
        got = ring.spread(key_set, exclude={victim})
        assert got == rebuilt.spread(key_set)
        assert victim not in got
        assert sum(got.values()) == len(key_set)

    @given(shards=shard_ids)
    @settings(max_examples=30, deadline=None)
    def test_addition_steals_only_from_existing_shards(self, shards):
        """Adding a shard never moves a key between two old shards."""
        newcomer = "newcomer-shard"
        if newcomer in shards:
            return
        key_set = [f"key-{i}" for i in range(200)]
        ring = HashRing(shards, vnodes=16)
        before = {key: ring.route(key) for key in key_set}
        ring.add(newcomer)
        for key in key_set:
            after = ring.route(key)
            assert after in (before[key], newcomer)


class TestRingUnits:
    def test_single_shard_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.route(f"k{i}") == "only" for i in range(50))

    def test_empty_ring_raises(self):
        with pytest.raises(NoLiveShard):
            HashRing().route("anything")

    def test_excluding_every_shard_raises(self):
        ring = HashRing(["a", "b"])
        with pytest.raises(NoLiveShard):
            ring.route("key", exclude={"a", "b"})

    def test_membership_edits_are_validated(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add("a")
        with pytest.raises(ValueError):
            ring.add("")
        with pytest.raises(ValueError):
            ring.remove("ghost")
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_container_protocol(self):
        ring = HashRing(["a", "b"])
        assert len(ring) == 2
        assert "a" in ring and "ghost" not in ring
        ring.remove("a")
        assert len(ring) == 1 and "a" not in ring

    def test_spread_excluding_every_shard_raises(self):
        ring = HashRing(["a", "b"])
        with pytest.raises(NoLiveShard):
            ring.spread(["key"], exclude={"a", "b"})

    def test_virtual_nodes_balance_the_keyspace(self):
        """With vnodes, 4 shards each own a sane share of 4000 keys."""
        ring = HashRing([f"s{i}" for i in range(4)], vnodes=64)
        spread = ring.spread(f"key-{i}" for i in range(4000))
        assert sum(spread.values()) == 4000
        for count in spread.values():
            assert 0.12 * 4000 < count < 0.40 * 4000
