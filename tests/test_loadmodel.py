"""Tests for the load-aware kernel model — §VII "improved kernel model"."""

import numpy as np
import pytest

from repro.algorithms import qr_program
from repro.core.simulator import run_real, simulate
from repro.kernels.loadmodel import (
    LoadAwareModel,
    LoadAwareModelSet,
    LoadAwareSimulationBackend,
)
from repro.kernels.timing import KernelModelSet
from repro.machine import calibration_run, collect_samples, get_machine
from repro.schedulers import QuarkScheduler
from repro.trace.compare import makespan_error
from repro.trace.events import Trace
from repro.trace.load import event_loads, loaded_kernel_samples


class TestEventLoads:
    def test_lone_event_load_is_width(self):
        tr = Trace(4)
        tr.record(0, 0, "K", 0.0, 1.0)
        tr.record(1, 1, "K", 5.0, 6.0, width=2)
        loads = event_loads(tr)
        assert loads[0] == pytest.approx(1.0)
        assert loads[1] == pytest.approx(2.0)

    def test_full_overlap(self):
        tr = Trace(2)
        tr.record(0, 0, "K", 0.0, 1.0)
        tr.record(1, 1, "K", 0.0, 1.0)
        loads = event_loads(tr)
        assert loads[0] == pytest.approx(2.0)
        assert loads[1] == pytest.approx(2.0)

    def test_partial_overlap(self):
        tr = Trace(2)
        tr.record(0, 0, "K", 0.0, 2.0)
        tr.record(1, 1, "K", 1.0, 2.0)
        loads = event_loads(tr)
        assert loads[0] == pytest.approx(1.5)  # alone for half its life
        assert loads[1] == pytest.approx(2.0)

    def test_empty_trace(self):
        assert event_loads(Trace(2)) == {}

    def test_zero_duration_event(self):
        tr = Trace(2)
        tr.record(0, 0, "K", 1.0, 1.0)
        assert event_loads(tr)[0] >= 0.0

    def test_mean_load_matches_activity_integral(self):
        # Duration-weighted mean load equals integral of count^2 / busy time.
        rng = np.random.default_rng(0)
        tr = Trace(4)
        for i in range(30):
            w = int(rng.integers(0, 4))
            start = float(rng.uniform(0, 10))
            tr.record(w, i, "K", start, start + float(rng.uniform(0.1, 2.0)))
        loads = event_loads(tr)
        total = sum(loads[e.task_id] * e.duration for e in tr.events)
        # Independent computation via fine sampling.
        ts = np.linspace(0, 13, 200001)
        counts = np.zeros_like(ts)
        for e in tr.events:
            counts += (ts >= e.start) & (ts < e.end)
        approx = float(np.sum(counts**2) * (ts[1] - ts[0]))
        assert total == pytest.approx(approx, rel=0.01)


class TestLoadedSamples:
    def test_pairs_grouped_by_kernel(self):
        tr = Trace(2)
        tr.record(0, 0, "A", 0.0, 1.0)
        tr.record(1, 1, "B", 0.0, 2.0)
        tr.record(0, 2, "A", 1.0, 2.0)
        pairs = loaded_kernel_samples(tr, drop_first_per_worker=False)
        assert len(pairs["A"]) == 2
        assert len(pairs["B"]) == 1
        duration, load = pairs["B"][0]
        assert duration == 2.0 and 1.0 < load <= 2.0


class TestLoadAwareModel:
    def test_recovers_linear_relation(self):
        rng = np.random.default_rng(1)
        loads = rng.uniform(1, 48, size=2000)
        durations = (1e-3 + 2e-5 * loads) * rng.lognormal(0, 0.02, size=2000)
        model = LoadAwareModel.fit(list(zip(durations, loads)))
        assert model.intercept == pytest.approx(1e-3, rel=0.05)
        assert model.slope == pytest.approx(2e-5, rel=0.1)
        assert model.sigma_log == pytest.approx(0.02, rel=0.3)

    def test_degenerate_load_falls_back_to_constant(self):
        pairs = [(1e-3, 8.0), (1.1e-3, 8.0), (0.9e-3, 8.0)]
        model = LoadAwareModel.fit(pairs)
        assert model.slope == 0.0
        assert model.mean_at(1.0) == model.mean_at(48.0)

    def test_sampling_positive(self):
        model = LoadAwareModel(intercept=1e-3, slope=-1e-4, sigma_log=0.05)
        rng = np.random.default_rng(0)
        # Even where the line goes negative, samples are floored positive.
        assert all(model.sample(rng, 50.0) > 0 for _ in range(100))

    def test_empty_pairs_rejected(self):
        with pytest.raises(ValueError):
            LoadAwareModel.fit([])

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            LoadAwareModel.fit([(0.0, 1.0)])


class TestLoadAwareModelSet:
    def test_from_trace_and_duration(self):
        machine = get_machine("magny_cours_48")
        trace = calibration_run(
            qr_program(8, 180), QuarkScheduler(48), machine, seed=0
        )
        models = LoadAwareModelSet.from_trace(trace)
        assert "DTSMQR" in models
        rng = np.random.default_rng(0)
        low = np.mean([models.duration("DTSMQR", 1.0, rng) for _ in range(200)])
        high = np.mean([models.duration("DTSMQR", 48.0, rng) for _ in range(200)])
        # Contention: more active cores, slower memory-bound kernel.
        assert high > low

    def test_unknown_kernel(self):
        models = LoadAwareModelSet(models={})
        with pytest.raises(KeyError, match="no load-aware model"):
            models.duration("DGEMM", 1.0, np.random.default_rng(0))

    def test_summary(self):
        models = LoadAwareModelSet(
            models={"K": LoadAwareModel(1e-3, 1e-5, 0.01)}
        )
        assert "K" in models.summary()


class TestLoadAwareBackend:
    def test_requires_reset(self):
        backend = LoadAwareSimulationBackend(LoadAwareModelSet(models={}))
        from repro.core.task import DataRegistry, TaskSpec
        from repro.schedulers.base import TaskNode

        spec = TaskSpec("K", (DataRegistry().alloc("x", 8).rw(),))
        spec.task_id = 0
        with pytest.raises(RuntimeError, match="reset"):
            backend.duration(TaskNode(spec), 0, 0.0, 1)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            LoadAwareSimulationBackend(LoadAwareModelSet(), warmup_penalty=-1.0)

    def test_improves_small_problem_accuracy(self):
        """The §VII claim: conditioning on load shrinks the small-problem
        error that the flat model suffers when calibrated at saturation."""
        machine = get_machine("magny_cours_48")
        cal = calibration_run(qr_program(16, 180), QuarkScheduler(48), machine, seed=0)
        flat = KernelModelSet.from_samples(collect_samples(cal), family="lognormal")
        aware = LoadAwareModelSet.from_trace(cal)

        errors_flat, errors_aware = [], []
        for nt in (6, 8, 10):
            real = run_real(qr_program(nt, 180), QuarkScheduler(48), machine, seed=1)
            sim_flat = simulate(
                qr_program(nt, 180), QuarkScheduler(48), flat, seed=2,
                warmup_penalty=machine.warmup_penalty,
            )
            sim_aware = QuarkScheduler(48).run(
                qr_program(nt, 180),
                LoadAwareSimulationBackend(aware, warmup_penalty=machine.warmup_penalty),
                seed=2,
            )
            errors_flat.append(abs(makespan_error(real, sim_flat)))
            errors_aware.append(abs(makespan_error(real, sim_aware)))
        assert np.mean(errors_aware) < np.mean(errors_flat)
