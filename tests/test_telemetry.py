"""Tests for fleet-wide telemetry.

Unit layers: the metrics registry and its strict Prometheus-text re-parser,
histogram quantile estimation, exposition merging, trace contexts + spans,
the structured JSON access logger, and the Perfetto service-span export.

End-to-end: in-process shard daemons behind an in-process router — all
telemetry-enabled — driven over real sockets, asserting that one trace id
spans router routing, shard admission, and run execution; that ``/metrics``
pages parse strictly and their histogram counts match the request counters;
and that the ``repro.loadgen/v2`` report's server-side view is consistent
with the client-side one.
"""

from __future__ import annotations

import io
import json
import math
import threading

import pytest

from repro.obs.perfetto import (
    loads_trace_event,
    service_span_events,
    service_trace_event_document,
    trace_event_document,
)
from repro.obs.telemetry import (
    PARENT_HEADER,
    TRACE_HEADER,
    JsonLogger,
    MetricsError,
    MetricsRegistry,
    ServiceTelemetry,
    Span,
    TraceContext,
    histogram_quantile,
    merge_expositions,
    new_span_id,
    new_trace_id,
    parse_exposition,
    route_label,
)
from repro.service import (
    ReproRouter,
    ReproServer,
    RouterService,
    RunRequest,
    ServiceClient,
    ShardAddress,
    SimulationService,
)
from repro.service.client import http_json_request, http_text_request
from repro.service.loadgen import run_loadgen, summarize

from .test_service import fake_result, make_spec, wait_until


# ---------------------------------------------------------------------------
# metrics registry + exposition round trip
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_and_gauge_render_and_reparse(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "Jobs.", ("kind",))
        g = reg.gauge("depth", "Queue depth.")
        c.inc(kind="a")
        c.inc(2, kind="b")
        g.set(7.5)
        expo = parse_exposition(reg.render())
        assert expo.total("jobs_total") == 3.0
        assert expo.total("jobs_total", labels={"kind": "b"}) == 2.0
        assert expo.total("depth") == 7.5

    def test_instrument_getters_are_idempotent_but_conflicts_raise(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "X.")
        assert reg.counter("x_total", "X.") is a
        with pytest.raises(MetricsError):
            reg.gauge("x_total", "X as a gauge.")
        with pytest.raises(MetricsError):
            reg.counter("x_total", "X.", ("other",))

    def test_wrong_label_set_raises(self):
        reg = MetricsRegistry()
        c = reg.counter("y_total", "Y.", ("route",))
        with pytest.raises(MetricsError):
            c.inc()
        with pytest.raises(MetricsError):
            c.inc(route="/a", extra="nope")

    def test_histogram_buckets_are_cumulative_and_inf_matches_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "Latency.", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.05, 0.5, 5.0):
            h.observe(v)
        expo = parse_exposition(reg.render())
        hist = expo.histogram("lat_seconds")
        assert hist["count"] == 5
        assert hist["buckets"][0.01] == 1
        assert hist["buckets"][0.1] == 3
        assert hist["buckets"][1.0] == 4
        assert hist["buckets"][math.inf] == 5
        assert hist["sum"] == pytest.approx(5.605)

    def test_le_boundary_is_inclusive(self):
        reg = MetricsRegistry()
        h = reg.histogram("b_seconds", "B.", buckets=(0.1, 1.0))
        h.observe(0.1)
        snap = parse_exposition(reg.render()).histogram("b_seconds")
        assert snap["buckets"][0.1] == 1


class TestExpositionParser:
    def test_sample_without_declaration_is_rejected(self):
        with pytest.raises(MetricsError):
            parse_exposition("undeclared_total 1\n")

    def test_malformed_label_body_is_rejected(self):
        page = "# TYPE a_total counter\na_total{route=/v1/run} 1\n"
        with pytest.raises(MetricsError):
            parse_exposition(page)

    def test_histogram_inf_bucket_must_match_count(self):
        page = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 1\n'
            'h_bucket{le="+Inf"} 2\n'
            "h_sum 1.0\n"
            "h_count 3\n"
        )
        with pytest.raises(MetricsError):
            parse_exposition(page)

    def test_non_cumulative_histogram_is_rejected(self):
        page = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 5\n'
            'h_bucket{le="2.0"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1.0\n"
            "h_count 5\n"
        )
        with pytest.raises(MetricsError):
            parse_exposition(page)

    def test_duplicate_series_is_rejected(self):
        page = "# TYPE a_total counter\na_total 1\na_total 2\n"
        with pytest.raises(MetricsError):
            parse_exposition(page)

    def test_comments_and_timestamps_are_tolerated(self):
        page = (
            "# just a comment\n"
            "# TYPE a_total counter\n"
            "# HELP a_total With a timestamped sample.\n"
            'a_total{k="v"} 3 1712000000000\n'
        )
        expo = parse_exposition(page)
        assert expo.total("a_total") == 3.0

    def test_registry_render_always_reparses(self):
        reg = MetricsRegistry()
        counter = reg.counter("weird_total", 'Help with a \\ backslash and "quotes".', ("k",))
        counter.inc(k='va"l\\ue')
        expo = parse_exposition(reg.render())
        assert expo.total("weird_total") == 1.0


class TestHistogramQuantile:
    def test_linear_interpolation_inside_the_crossing_bucket(self):
        # 10 observations uniform in (0, 1]: rank 5 crosses the 1.0 bucket.
        buckets = {1.0: 10.0, math.inf: 10.0}
        assert histogram_quantile(buckets, 0.5) == pytest.approx(0.5)

    def test_rank_in_inf_bucket_reports_largest_finite_bound(self):
        buckets = {0.1: 0.0, 1.0: 1.0, math.inf: 10.0}
        assert histogram_quantile(buckets, 0.99) == 1.0

    def test_empty_histogram_is_none(self):
        assert histogram_quantile({1.0: 0.0, math.inf: 0.0}, 0.5) is None

    def test_missing_inf_bucket_raises(self):
        with pytest.raises(MetricsError):
            histogram_quantile({1.0: 3.0}, 0.5)


class TestMergeExpositions:
    def _page(self, n: float) -> str:
        reg = MetricsRegistry()
        reg.counter("repro_requests_total", "Reqs.", ("route",)).inc(n, route="/v1/run")
        return reg.render()

    def test_shard_labels_disambiguate_identical_pages(self):
        parts = [
            (parse_exposition(self._page(1)), {"shard": "0"}),
            (parse_exposition(self._page(2)), {"shard": "1"}),
        ]
        merged = parse_exposition(merge_expositions(parts))
        assert merged.total("repro_requests_total") == 3.0
        assert merged.total("repro_requests_total", labels={"shard": "1"}) == 2.0

    def test_colliding_series_raise(self):
        parts = [
            (parse_exposition(self._page(1)), {}),
            (parse_exposition(self._page(2)), {}),
        ]
        with pytest.raises(MetricsError):
            merge_expositions(parts)


class TestRouteLabel:
    KNOWN = ["/v1/run", "/v1/batch", "/v1/health", "/v1/stats", "/metrics"]

    @pytest.mark.parametrize("path", KNOWN)
    def test_known_routes_pass_through(self, path):
        assert route_label(path) == path

    def test_unknown_route_collapses_to_other(self):
        # Unbounded label cardinality would make the registry a DoS vector.
        assert route_label("/v1/run/../../etc/passwd") == "other"
        assert route_label("/favicon.ico") == "other"


# ---------------------------------------------------------------------------
# trace contexts, spans, logging
# ---------------------------------------------------------------------------


class TestTraceContext:
    def test_headers_round_trip(self):
        ctx = TraceContext(trace_id=new_trace_id(), parent_span=new_span_id())
        back = TraceContext.from_headers(ctx.headers())
        assert back == ctx

    def test_absent_header_is_untraced(self):
        assert TraceContext.from_headers({}) is None

    def test_garbage_header_degrades_to_untraced(self):
        # A hostile or broken client must never be able to 400 a request
        # (or poison a log line) through the trace header.
        for bad in ("spaces in id", "x" * 65, "", "id\nwith\nnewlines", "emojis🎉"):
            assert TraceContext.from_headers({TRACE_HEADER: bad}) is None

    def test_child_reparents_onto_the_given_span(self):
        ctx = TraceContext(trace_id="t" * 32, parent_span=None)
        child = ctx.child("f" * 16)
        assert child.trace_id == ctx.trace_id
        assert child.headers()[PARENT_HEADER] == "f" * 16


class TestSpan:
    def test_to_dict_from_dict_round_trip(self):
        span = Span(
            name="shard.run",
            component="shard-0",
            start_s=100.5,
            duration_s=0.25,
            span_id=new_span_id(),
            trace_id=new_trace_id(),
            attrs={"key": "abc"},
        )
        assert Span.from_dict(span.to_dict()) == span

    def test_bound_fills_but_never_clobbers(self):
        span = Span(name="a", component="c", start_s=1.0, duration_s=0.1, span_id="s" * 16)
        bound = span.bound("t" * 32, "p" * 16)
        assert bound.trace_id == "t" * 32 and bound.parent_id == "p" * 16
        again = bound.bound("u" * 32, "q" * 16)
        assert again.trace_id == "t" * 32 and again.parent_id == "p" * 16

    def test_from_dict_rejects_malformed_documents(self):
        span = Span(name="a", component="c", start_s=1.0, duration_s=0.1, span_id="s" * 16)
        good = span.to_dict()
        for mutate in (
            lambda d: d.pop("name"),
            lambda d: d.update(duration_s="fast"),
            lambda d: d.update(span_id=42),
        ):
            doc = dict(good)
            mutate(doc)
            with pytest.raises(ValueError):
                Span.from_dict(doc)


class TestJsonLogger:
    def test_writes_one_json_line_per_event(self, tmp_path):
        path = tmp_path / "logs" / "access.jsonl"
        logger = JsonLogger(path)
        logger.log("request", route="/v1/run", status=200)
        logger.log("http.server", message="GET /v1/run HTTP/1.1 200")
        logger.close()
        lines = [json.loads(x) for x in path.read_text().splitlines()]
        assert [x["event"] for x in lines] == ["request", "http.server"]
        assert lines[0]["route"] == "/v1/run" and "ts" in lines[0]

    def test_stream_target_and_thread_safety(self):
        stream = io.StringIO()
        logger = JsonLogger(stream)
        threads = [threading.Thread(target=lambda i=i: logger.log("e", n=i)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 8
        assert {json.loads(x)["n"] for x in lines} == set(range(8))


class TestServiceTelemetry:
    def test_record_http_counts_and_logs(self):
        stream = io.StringIO()
        tel = ServiceTelemetry("serve", access_log=stream)
        tel.record_http(
            route="/v1/run",
            method="POST",
            status=200,
            latency_s=0.012,
            trace_id="t" * 32,
            client="127.0.0.1",
            extra={"cache_hit": True},
        )
        expo = parse_exposition(tel.registry.render())
        assert expo.total("repro_requests_total", labels={"status": "200"}) == 1.0
        hist = expo.histogram("repro_request_latency_seconds", labels={"route": "/v1/run"})
        assert hist["count"] == 1
        line = json.loads(stream.getvalue())
        assert line["event"] == "request" and line["trace_id"] == "t" * 32
        assert line["cache_hit"] is True and line["latency_ms"] == 12.0

    def test_server_log_reports_whether_it_wrote(self):
        assert ServiceTelemetry("serve").server_log("GET / 200") is False
        tel = ServiceTelemetry("serve", access_log=io.StringIO())
        assert tel.server_log("GET / 200") is True


# ---------------------------------------------------------------------------
# Perfetto export of service spans
# ---------------------------------------------------------------------------


def _request_spans(trace_id: str):
    t0 = 1000.0

    def mk(name, comp, start, dur, **attrs):
        return Span(
            name=name,
            component=comp,
            start_s=start,
            duration_s=dur,
            span_id=new_span_id(),
            trace_id=trace_id,
            attrs=attrs,
        )

    return [
        mk("router.route", "router", t0, 0.001, shard="1"),
        mk("router.forward", "router", t0 + 0.001, 0.050, shard="1", status=200),
        mk("shard.admission", "shard-1", t0 + 0.002, 0.0005, coalesced=False),
        mk("shard.run", "shard-1", t0 + 0.003, 0.040, key="abcd"),
    ]


class TestPerfettoServiceSpans:
    def test_document_validates_and_lanes_by_component(self):
        trace_id = new_trace_id()
        doc = service_trace_event_document(_request_spans(trace_id))
        loads_trace_event(json.dumps(doc, sort_keys=True))
        lanes = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"router", "shard-1"} <= lanes
        assert doc["otherData"]["trace_ids"] == [trace_id]
        assert doc["otherData"]["service_spans"] == 4

    def test_accepts_span_objects_and_dicts_alike(self):
        spans = _request_spans(new_trace_id())
        a = service_span_events(spans)
        b = service_span_events([s.to_dict() for s in spans])
        assert a == b

    def test_timestamps_rebase_to_the_earliest_span(self):
        doc = service_trace_event_document(_request_spans(new_trace_id()))
        starts = [e["ts"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert min(starts) == 0

    def test_mixed_simulation_and_service_document(self):
        from repro.algorithms import cholesky_program
        from repro.core.simulator import run_real
        from repro.schedulers import make_scheduler

        trace = run_real(
            cholesky_program(4, 100), make_scheduler("quark", 2), "uniform_4", seed=1
        )
        base = trace_event_document(trace)
        mixed = service_trace_event_document(_request_spans(new_trace_id()), base=base)
        loads_trace_event(json.dumps(mixed, sort_keys=True))
        pids = {e["pid"] for e in mixed["traceEvents"]}
        assert 1 in pids and 4 in pids  # worker lanes and service lanes coexist
        assert len(mixed["traceEvents"]) > len(base["traceEvents"])

    def test_base_must_be_a_trace_event_document(self):
        with pytest.raises(ValueError, match="trace_event"):
            service_trace_event_document(_request_spans(new_trace_id()), base={"nope": True})


# ---------------------------------------------------------------------------
# end-to-end: traced requests and metrics across router → shard → run
# ---------------------------------------------------------------------------


def fake_run(request: RunRequest):
    return fake_result(request.spec)


class TelemetryHarness:
    """Telemetry-enabled in-process fleet: N shard daemons + a router."""

    def __init__(self, n: int = 2, *, access_log=None, run_fn=fake_run):
        self.servers = []
        self.services = []
        addresses = []
        for i in range(n):
            tel = ServiceTelemetry(f"shard-{i}")
            svc = SimulationService(workers=2, max_pending=8, run_fn=run_fn, telemetry=tel)
            server = ReproServer(svc, port=0, telemetry=tel).start()
            self.services.append(svc)
            self.servers.append(server)
            host, port = server.address
            addresses.append(ShardAddress(str(i), host, port))
        self.telemetry = ServiceTelemetry("router", access_log=access_log)
        self.router = RouterService(addresses, telemetry=self.telemetry)
        self.front = ReproRouter(self.router, port=0, telemetry=self.telemetry).start()
        self.host, self.port = self.front.address
        self.shard_addresses = addresses

    def close(self):
        self.front.shutdown(drain_timeout_s=5)
        self.front.wait_closed(5)
        for server in self.servers:
            server.shutdown(drain_timeout_s=5)
            server.wait_closed(5)


@pytest.fixture
def fleet(request):
    built = []

    def build(**kwargs) -> TelemetryHarness:
        h = TelemetryHarness(**kwargs)
        built.append(h)
        return h

    yield build
    for h in built:
        h.close()


class TestEndToEndTracing:
    def test_one_trace_id_spans_router_shard_and_run(self, fleet):
        h = fleet()
        client = ServiceClient(h.host, h.port)
        doc = client.run(make_spec(seed=5), trace=True)
        assert doc["ok"]
        spans = doc["spans"]
        assert len({s["trace_id"] for s in spans}) == 1
        by_name = {s["name"]: s for s in spans}
        expected = {"router.route", "router.forward", "shard.admission", "shard.wait", "shard.run"}
        assert expected <= set(by_name)
        assert by_name["router.forward"]["component"] == "router"
        assert by_name["shard.run"]["component"].startswith("shard-")
        # Shard spans nest under the router's forward hop.
        fwd = by_name["router.forward"]["span_id"]
        assert by_name["shard.admission"]["parent_id"] == fwd
        assert by_name["shard.run"]["parent_id"] == fwd

    def test_untraced_request_carries_no_spans(self, fleet):
        h = fleet()
        doc = ServiceClient(h.host, h.port).run(make_spec(seed=6))
        assert doc["ok"] and "spans" not in doc

    def test_caller_chosen_trace_id_is_honoured(self, fleet):
        h = fleet()
        trace_id = new_trace_id()
        doc = ServiceClient(h.host, h.port).run(make_spec(seed=7), trace=trace_id)
        assert {s["trace_id"] for s in doc["spans"]} == {trace_id}

    def test_garbage_trace_header_degrades_to_untraced(self, fleet):
        h = fleet()
        body = RunRequest(spec=make_spec(seed=8)).to_document()
        status, out = http_json_request(
            h.host,
            h.port,
            "POST",
            "/v1/run",
            body,
            timeout_s=30,
            headers={TRACE_HEADER: "not a valid id!!"},
        )
        assert status == 200 and out["ok"] and "spans" not in out

    def test_direct_shard_request_traces_without_a_router(self, fleet):
        h = fleet(n=1)
        addr = h.shard_addresses[0]
        doc = ServiceClient(addr.host, addr.port).run(make_spec(seed=9), trace=True)
        names = {s["name"] for s in doc["spans"]}
        assert {"shard.admission", "shard.wait", "shard.run"} <= names
        assert not any(n.startswith("router.") for n in names)

    def test_traced_response_round_trips_the_perfetto_loader(self, fleet):
        h = fleet()
        doc = ServiceClient(h.host, h.port).run(make_spec(seed=10), trace=True)
        trace_doc = service_trace_event_document(doc["spans"])
        loads_trace_event(json.dumps(trace_doc, sort_keys=True))


class TestMetricsEndpoints:
    def test_shard_page_parses_and_histogram_matches_counter(self, fleet):
        h = fleet(n=1)
        client = ServiceClient(h.host, h.port)
        for seed in range(3):
            assert client.run(make_spec(seed=seed))["ok"]
        addr = h.shard_addresses[0]

        def scrape():
            status, text = http_text_request(addr.host, addr.port, "GET", "/metrics")
            assert status == 200
            return parse_exposition(text)  # strict: TYPE lines, label syntax, invariants

        def run_total() -> float:
            return scrape().total("repro_requests_total", labels={"route": "/v1/run"})

        # Counters are bumped after the response goes out; poll to 3.
        wait_until(lambda: run_total() == 3.0)
        expo = scrape()
        run_requests = expo.total("repro_requests_total", labels={"route": "/v1/run"})
        hist = expo.histogram("repro_request_latency_seconds", labels={"route": "/v1/run"})
        assert hist["buckets"][math.inf] == hist["count"] == run_requests
        assert expo.total("repro_runs_total", labels={"outcome": "ok"}) == 3.0

    def test_router_page_aggregates_shards_under_a_shard_label(self, fleet):
        h = fleet()
        client = ServiceClient(h.host, h.port)
        for seed in range(4):
            assert client.run(make_spec(seed=seed))["ok"]
        def scrape():
            status, text = http_text_request(h.host, h.port, "GET", "/metrics")
            assert status == 200
            return parse_exposition(text)

        def own_total() -> float:
            labels = {"route": "/v1/run"}
            return scrape().total("repro_requests_total", labels=labels, without=("shard",))

        wait_until(lambda: own_total() == 4.0)
        expo = scrape()
        own = expo.total("repro_requests_total", labels={"route": "/v1/run"}, without=("shard",))
        assert own == 4.0
        # Every router-forwarded request landed on some shard's relabelled
        # series; shard pages were scraped after the forwards completed.
        sharded = sum(
            expo.total("repro_requests_total", labels={"route": "/v1/run", "shard": sid})
            for sid in ("0", "1")
        )
        assert sharded == 4.0
        assert expo.total("repro_router_forwards_total", labels={"outcome": "ok"}) == 4.0
        assert expo.total("repro_router_shard_up") == 2.0

    def test_router_content_type_is_prometheus_text(self, fleet):
        import http.client

        h = fleet(n=1)
        conn = http.client.HTTPConnection(h.host, h.port, timeout=10)
        try:
            conn.request("GET", "/metrics")
            resp = conn.getresponse()
            assert resp.status == 200
            assert "text/plain" in resp.headers["Content-Type"]
            assert "version=0.0.4" in resp.headers["Content-Type"]
            resp.read()
        finally:
            conn.close()

    def test_scrape_failure_degrades_and_is_counted(self, fleet):
        h = fleet()
        h.servers[0].shutdown(drain_timeout_s=5)
        h.servers[0].wait_closed(5)
        status, text = http_text_request(h.host, h.port, "GET", "/metrics")
        assert status == 200  # the page degrades, it never 500s
        expo = parse_exposition(text)
        assert expo.total("repro_router_scrape_errors_total", labels={"shard": "0"}) >= 1
        # The live shard's series still made it onto the page.
        assert expo.total("repro_requests_total", labels={"shard": "1"}) >= 0


class TestAccessLog:
    def test_request_lines_carry_trace_and_disposition(self, fleet, tmp_path):
        log_path = tmp_path / "router-access.jsonl"
        h = fleet(access_log=log_path)
        client = ServiceClient(h.host, h.port)
        traced = client.run(make_spec(seed=11), trace=True)
        client.run(make_spec(seed=11))  # cache/coalesce path, untraced

        def run_lines_logged() -> bool:
            # The access-log line is written after the response bytes go out,
            # so the client can get here first — poll until both lines land.
            return log_path.exists() and log_path.read_text().count('"/v1/run"') >= 2

        wait_until(run_lines_logged)
        lines = [json.loads(x) for x in log_path.read_text().splitlines()]
        requests = [x for x in lines if x["event"] == "request"]
        run_lines = [x for x in requests if x["route"] == "/v1/run"]
        assert len(run_lines) == 2
        traced_line = next(x for x in run_lines if x["trace_id"] is not None)
        assert traced_line["trace_id"] == traced["spans"][0]["trace_id"]
        assert traced_line["status"] == 200 and traced_line["latency_ms"] > 0
        assert all(x["component"] == "router" for x in run_lines)
        assert {"cache_hit", "coalesced"} <= set(run_lines[0])

    def test_http_server_lines_route_into_the_structured_log(self):
        stream = io.StringIO()
        tel = ServiceTelemetry("shard-0", access_log=stream)
        svc = SimulationService(workers=1, run_fn=fake_run, telemetry=tel)
        server = ReproServer(svc, port=0, telemetry=tel).start()
        try:
            host, port = server.address
            status, _ = http_json_request(
                host,
                port,
                "POST",
                "/v1/run",
                RunRequest(spec=make_spec(seed=12)).to_document(),
                timeout_s=30,
            )
            assert status == 200
            wait_until(lambda: '"request"' in stream.getvalue())
        finally:
            server.shutdown(drain_timeout_s=5)
            server.wait_closed(5)
        events = [json.loads(x)["event"] for x in stream.getvalue().splitlines()]
        # The stdlib's per-request line lands as http.server, not on stderr.
        assert "http.server" in events and "request" in events


class TestLoadgenV2:
    def test_report_carries_the_server_side_view(self, fleet, tmp_path):
        h = fleet()
        docs = [RunRequest(spec=make_spec(seed=s)).to_document() for s in range(4)]
        trace_path = tmp_path / "request.perfetto.json"
        report = run_loadgen(
            h.host,
            h.port,
            docs,
            loop="closed",
            duration_s=0.5,
            concurrency=2,
            trace_out=trace_path,
        )
        assert report["schema"] == "repro.loadgen/v2"
        server = report["server_histogram"]
        assert server is not None and server["count"] > 0
        # The deltas must reconcile exactly with the client-side count:
        # every issued attempt (first tries + retries) minus the attempts
        # that never reached the server.
        assert report["server_requests_delta"] == (
            report["requests"] + report["retries"] - report["transport_errors"]
        )
        assert report["skew_p99_s"] is not None
        trace = report["request_trace"]
        assert trace["ok"] and trace["trace_id"]
        loads_trace_event(trace_path.read_text())
        rendered = summarize(report)
        assert "server (" in rendered and "trace " in rendered

    def test_pre_telemetry_target_degrades_gracefully(self):
        # A daemon with no telemetry (direct SimulationService construction)
        # still load-tests; the server-side stanzas are just null.
        svc = SimulationService(workers=2, run_fn=fake_run)
        server = ReproServer(svc, port=0).start()
        try:
            host, port = server.address
            docs = [RunRequest(spec=make_spec(seed=0)).to_document()]
            report = run_loadgen(host, port, docs, loop="closed", duration_s=0.3, concurrency=1)
        finally:
            server.shutdown(drain_timeout_s=5)
            server.wait_closed(5)
        assert report["requests"] > 0
        assert report["server_histogram"] is None
        assert report["server_requests_delta"] is None
        assert report["skew_p99_s"] is None
