"""Tests for the cell-partitioned parallel event engine.

The headline guarantee under test: every engine mode produces the *same
trace*.  ``serialized`` must stay byte-identical to the golden digests in
``tests/data/preopt_trace_digests.json`` (with and without a probe
attached), and ``multicell`` must reproduce those same bytes over per-cell
event queues — the conservative protocol degenerates to global-order
processing because the superscalar runtimes share scheduler state, so the
equivalence is exact, not merely statistical.
"""

import hashlib
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import cholesky_program, qr_program
from repro.bench import synthetic_models
from repro.core.cells import (
    ENGINE_MODES,
    CellPlan,
    backend_duration_floor,
    compute_lookahead,
    default_engine_mode,
    plan_cells,
    plan_for_run,
    resolve_engine_mode,
)
from repro.core.metrics import RunMetrics
from repro.core.simulator import run_real, simulate
from repro.core.task import Program
from repro.machine.topology import get_machine
from repro.obs import RecordingProbe, build_series, trace_event_document
from repro.obs.probe import CELL_ADVANCE
from repro.runner import ProgramSpec, RunSpec, SchedulerSpec, execute_spec
from repro.schedulers import make_scheduler
from repro.trace.textio import dumps_trace

DATA = Path(__file__).parent / "data"
SCHEDULERS = ("quark", "starpu", "ompss")


def _digest(trace) -> str:
    return hashlib.sha256(dumps_trace(trace).encode()).hexdigest()


# -- cell planning ----------------------------------------------------------
class TestCellPlanning:
    def test_magny_cours_16_workers_splits_at_the_socket(self):
        plan = plan_cells(get_machine("magny_cours_48"), 16)
        assert plan.n_cells == 2
        assert plan.cell_of_worker == (0,) * 12 + (1,) * 4
        assert plan.sockets == (0, 1)
        assert plan.exploitable
        assert plan.workers_in(1) == (12, 13, 14, 15)

    def test_full_machine_uses_every_socket(self):
        machine = get_machine("magny_cours_48")
        plan = plan_cells(machine, machine.n_cores)
        assert plan.n_cells == machine.n_sockets
        assert plan.n_workers == machine.n_cores

    def test_single_socket_plan_is_not_exploitable(self):
        plan = plan_cells(get_machine("magny_cours_48"), 4)
        assert plan.n_cells == 1
        assert not plan.exploitable

    def test_oversubscribed_machine_raises(self):
        with pytest.raises(ValueError, match="no per-socket partition"):
            plan_cells(get_machine("uniform_4"), 16)
        with pytest.raises(ValueError, match="positive"):
            plan_cells(get_machine("uniform_4"), 0)

    def test_cell_plan_validation(self):
        with pytest.raises(ValueError, match="at least one cell"):
            CellPlan(n_cells=0, cell_of_worker=(), sockets=())
        with pytest.raises(ValueError, match="one socket per cell"):
            CellPlan(n_cells=2, cell_of_worker=(0, 1), sockets=(0,))
        with pytest.raises(ValueError, match="at least one worker"):
            CellPlan(n_cells=1, cell_of_worker=(), sockets=(0,))
        with pytest.raises(ValueError, match="unknown cell"):
            CellPlan(n_cells=1, cell_of_worker=(0, 1), sockets=(0,))

    def test_to_dict_round_trips_the_layout(self):
        plan = plan_cells(get_machine("magny_cours_48"), 13)
        doc = plan.to_dict()
        assert doc == {
            "n_cells": 2,
            "cell_of_worker": [0] * 12 + [1],
            "sockets": [0, 1],
        }
        assert json.loads(json.dumps(doc)) == doc

    def test_plan_for_run_modes(self):
        machine = get_machine("magny_cours_48")
        assert plan_for_run("serialized", machine, 16) is None
        assert plan_for_run("auto", None, 16) is None
        assert plan_for_run("auto", get_machine("uniform_4"), 16) is None
        assert plan_for_run("multicell", machine, 16).n_cells == 2
        with pytest.raises(ValueError, match="no per-socket partition"):
            plan_for_run("multicell", get_machine("uniform_4"), 16)
        with pytest.raises(ValueError, match="unknown engine mode"):
            plan_for_run("parallel", machine, 16)

    def test_resolve_engine_mode(self):
        plan = plan_cells(get_machine("magny_cours_48"), 16)
        assert resolve_engine_mode("serialized", plan) == ("serialized", None, None)
        assert resolve_engine_mode("multicell", plan) == ("multicell", plan, None)
        effective, got, reason = resolve_engine_mode("auto", None)
        assert (effective, got) == ("serialized", None)
        assert "no machine topology" in reason
        single = plan_cells(get_machine("magny_cours_48"), 4)
        effective, got, reason = resolve_engine_mode("auto", single)
        assert (effective, got) == ("serialized", None)
        assert "single cell" in reason
        with pytest.raises(ValueError, match="exploitable partition"):
            resolve_engine_mode("multicell", single)

    def test_lookahead_rule(self):
        # min(insert_cost, dispatch_overhead + duration_floor)
        assert compute_lookahead(1.5e-6, 2e-6, 0.0) == 1.5e-6
        assert compute_lookahead(5e-6, 1e-6, 1e-6) == 2e-6

    def test_backend_duration_floor(self):
        class Bare:
            pass

        class Advertises:
            def duration_floor(self):
                return 3e-6

        class Broken:
            def duration_floor(self):
                return -1.0

        assert backend_duration_floor(Bare()) == 0.0
        assert backend_duration_floor(Advertises()) == 3e-6
        with pytest.raises(ValueError, match="negative duration floor"):
            backend_duration_floor(Broken())

    def test_default_engine_mode_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_MODE", raising=False)
        assert default_engine_mode() == "serialized"
        for mode in ENGINE_MODES:
            monkeypatch.setenv("REPRO_ENGINE_MODE", mode)
            assert default_engine_mode() == mode
        monkeypatch.setenv("REPRO_ENGINE_MODE", "turbo")
        with pytest.raises(ValueError, match="REPRO_ENGINE_MODE"):
            default_engine_mode()


# -- golden equivalence -----------------------------------------------------
class TestGoldenEquivalence:
    """The acceptance gate: every mode reproduces the golden digests."""

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_multicell_matches_golden_digests(self, scheduler):
        digests = json.loads((DATA / "preopt_trace_digests.json").read_text())["digests"]
        for algorithm, gen in (("cholesky", cholesky_program), ("qr", qr_program)):
            program = gen(8, 200)
            models = synthetic_models(program)
            sim_trace = simulate(
                program,
                make_scheduler(scheduler, 16),
                models,
                seed=1234,
                warmup_penalty=1e-3,
                engine_mode="multicell",
                machine="magny_cours_48",
            )
            assert _digest(sim_trace) == digests[f"sim/{algorithm}/{scheduler}/nt8"], (
                f"multicell simulated trace drifted: {algorithm}/{scheduler}"
            )
            real_trace = run_real(
                program,
                make_scheduler(scheduler, 16),
                "magny_cours_48",
                seed=77,
                engine_mode="multicell",
            )
            assert _digest(real_trace) == digests[f"real/{algorithm}/{scheduler}/nt8"], (
                f"multicell real-mode trace drifted: {algorithm}/{scheduler}"
            )

    @pytest.mark.parametrize("engine_mode", ["serialized", "multicell"])
    def test_probe_never_perturbs_the_golden_trace(self, engine_mode):
        digests = json.loads((DATA / "preopt_trace_digests.json").read_text())["digests"]
        program = cholesky_program(8, 200)
        models = synthetic_models(program)
        trace = simulate(
            program,
            make_scheduler("quark", 16),
            models,
            seed=1234,
            warmup_penalty=1e-3,
            engine_mode=engine_mode,
            machine="magny_cours_48",
            probe=RecordingProbe(),
        )
        assert _digest(trace) == digests["sim/cholesky/quark/nt8"]

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_metrics_equivalent_across_modes(self, scheduler):
        program = cholesky_program(8, 200)
        models = synthetic_models(program)
        collected = {}
        for mode in ("serialized", "multicell"):
            metrics = RunMetrics()
            simulate(
                program,
                make_scheduler(scheduler, 16),
                models,
                seed=1234,
                warmup_penalty=1e-3,
                engine_mode=mode,
                machine="magny_cours_48",
                metrics=metrics,
            )
            collected[mode] = metrics
        a, b = collected["serialized"], collected["multicell"]
        assert a.events_processed == b.events_processed
        assert a.heap_pushes == b.heap_pushes
        assert a.peak_heap_depth == b.peak_heap_depth
        engine = b.extra["engine"]
        assert engine["mode"] == engine["effective"] == "multicell"
        assert engine["cells"]["n_cells"] == 2
        assert sum(engine["cell_events"]) == b.events_processed
        assert engine["lookahead_s"] > 0.0
        # The serialized run's metrics document is unchanged by the feature.
        assert "engine" not in a.extra


# -- differential (Hypothesis) ----------------------------------------------
@st.composite
def _random_programs(draw):
    """Small random task DAGs with genuine RAW/WAR/WAW hazard structure."""
    n_refs = draw(st.integers(min_value=2, max_value=6))
    n_tasks = draw(st.integers(min_value=1, max_value=25))
    program = Program("hypothesis")
    refs = [program.registry.alloc("R", 64, key=("R", i)) for i in range(n_refs)]
    for _ in range(n_tasks):
        kernel = draw(st.sampled_from(["DGEMM", "DTRSM", "DSYRK"]))
        w = draw(st.integers(min_value=0, max_value=n_refs - 1))
        reads = draw(
            st.lists(st.integers(min_value=0, max_value=n_refs - 1), max_size=3)
        )
        accesses = [refs[w].write()] + [refs[r].read() for r in set(reads) - {w}]
        program.add_task(kernel, accesses, flops=1.0)
    return program


class TestDifferential:
    @settings(max_examples=25, deadline=None)
    @given(
        program=_random_programs(),
        scheduler=st.sampled_from(SCHEDULERS),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_workers=st.sampled_from([13, 16, 24, 48]),
    )
    def test_multicell_trace_identical_to_serialized(
        self, program, scheduler, seed, n_workers
    ):
        models = synthetic_models(program)
        traces = {}
        for mode in ("serialized", "multicell"):
            traces[mode] = simulate(
                program,
                make_scheduler(scheduler, n_workers),
                models,
                seed=seed,
                engine_mode=mode,
                machine="magny_cours_48",
            )
        assert dumps_trace(traces["serialized"]) == dumps_trace(traces["multicell"])


# -- mode selection, fallback, spec plumbing --------------------------------
def _spec(**kwargs):
    return RunSpec(
        program=ProgramSpec("cholesky", 4, 100),
        scheduler=SchedulerSpec("quark", 16),
        machine="magny_cours_48",
        seed=0,
        mode="real",
        **kwargs,
    )


class TestModeSelection:
    def test_auto_falls_back_on_single_socket(self):
        program = cholesky_program(4, 100)
        metrics = RunMetrics()
        run_real(
            program,
            make_scheduler("quark", 4),
            "uniform_4",
            seed=0,
            metrics=metrics,
            engine_mode="auto",
        )
        engine = metrics.extra["engine"]
        assert engine["mode"] == "auto"
        assert engine["effective"] == "serialized"
        assert "single cell" in engine["fallback_reason"]

    def test_forced_multicell_on_single_socket_raises(self):
        program = cholesky_program(4, 100)
        with pytest.raises(ValueError, match="exploitable partition"):
            run_real(
                program,
                make_scheduler("quark", 4),
                "uniform_4",
                seed=0,
                engine_mode="multicell",
            )

    def test_spec_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="engine_mode"):
            _spec(engine_mode="turbo")

    def test_threaded_runtime_keeps_serialized_engine(self):
        with pytest.raises(ValueError, match="threaded"):
            RunSpec(
                program=ProgramSpec("cholesky", 4, 100),
                scheduler=SchedulerSpec("quark", 16),
                machine="magny_cours_48",
                seed=0,
                mode="simulated",
                cal_nt=4,
                runtime="threaded",
                engine_mode="multicell",
            )

    def test_cache_key_backward_compatible(self):
        # Documents written before the engine_mode field existed must keep
        # hashing to the same key as today's serialized default.
        spec = _spec()
        doc = spec.to_dict()
        assert doc.pop("engine_mode") == "serialized"
        assert RunSpec.from_dict(doc).cache_key() == spec.cache_key()
        assert _spec(engine_mode="serialized").cache_key() == spec.cache_key()
        # Non-default modes keep distinct entries: the metrics differ.
        assert _spec(engine_mode="auto").cache_key() != spec.cache_key()
        assert _spec(engine_mode="multicell").cache_key() != _spec(
            engine_mode="auto"
        ).cache_key()

    def test_execute_spec_records_mode_and_matches_serialized(self):
        trace_serial, _ = execute_spec(_spec())
        trace_multi, metrics = execute_spec(_spec(engine_mode="multicell"))
        assert dumps_trace(trace_serial) == dumps_trace(trace_multi)
        assert metrics.extra["engine_mode"] == "multicell"
        assert metrics.extra["engine"]["effective"] == "multicell"


# -- observability ----------------------------------------------------------
class TestCellObservability:
    def _probed_run(self):
        program = cholesky_program(6, 100)
        models = synthetic_models(program)
        probe = RecordingProbe()
        trace = simulate(
            program,
            make_scheduler("quark", 16),
            models,
            seed=7,
            engine_mode="multicell",
            machine="magny_cours_48",
            probe=probe,
        )
        return trace, probe

    def test_probe_carries_cell_advances(self):
        _, probe = self._probed_run()
        advances = [e for e in probe.sorted_events() if e.kind == CELL_ADVANCE]
        assert advances
        assert {e.worker for e in advances} == {0, 1}
        assert all(e.value >= 0.0 for e in advances)

    def test_series_gains_per_cell_depth_tracks(self):
        _, probe = self._probed_run()
        series = build_series(probe)
        assert "cell0_depth" in series
        assert "cell1_depth" in series
        assert series["cell0_depth"].times

    def test_perfetto_export_gains_cell_lanes(self):
        trace, probe = self._probed_run()
        doc = trace_event_document(trace, probe)
        events = doc["traceEvents"]
        names = {
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert "cells" in names
        lanes = [e for e in events if e.get("cat") == "cell"]
        assert lanes
        assert {e["tid"] for e in lanes} <= {0, 1}
        for e in lanes:
            assert e["ph"] == "i"
            assert "ts" in e and "pid" in e and "name" in e

    def test_serialized_run_emits_no_cell_events(self):
        program = cholesky_program(4, 100)
        models = synthetic_models(program)
        probe = RecordingProbe()
        simulate(program, make_scheduler("quark", 16), models, seed=7, probe=probe)
        assert not [e for e in probe.sorted_events() if e.kind == CELL_ADVANCE]
