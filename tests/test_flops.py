"""Unit tests for kernel and factorization flop counts."""

import pytest

from repro.kernels.flops import (
    KERNEL_FLOPS,
    cholesky_flops,
    kernel_flops,
    lu_flops,
    qr_flops,
)


class TestKernelFlops:
    def test_gemm_dominates_cholesky_kernels(self):
        b = 100
        assert kernel_flops("DGEMM", b) > kernel_flops("DSYRK", b)
        assert kernel_flops("DSYRK", b) >= kernel_flops("DTRSM", b)
        assert kernel_flops("DTRSM", b) > kernel_flops("DPOTRF", b)

    def test_tsmqr_dominates_qr_kernels(self):
        b = 100
        assert kernel_flops("DTSMQR", b) == max(
            kernel_flops(k, b) for k in ("DGEQRT", "DORMQR", "DTSQRT", "DTSMQR")
        )

    def test_gemm_exact(self):
        assert kernel_flops("DGEMM", 10) == 2000

    def test_cubic_scaling(self):
        for k in KERNEL_FLOPS:
            ratio = kernel_flops(k, 200) / kernel_flops(k, 100)
            assert ratio == pytest.approx(8.0, rel=0.05)

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            kernel_flops("NOPE", 10)

    def test_nonpositive_tile_rejected(self):
        with pytest.raises(ValueError):
            kernel_flops("DGEMM", 0)


class TestFactorizationFlops:
    def test_cholesky_leading_term(self):
        n = 3000
        assert cholesky_flops(n) == pytest.approx(n**3 / 3, rel=1e-3)

    def test_qr_square_leading_term(self):
        n = 3000
        assert qr_flops(n) == pytest.approx(4 * n**3 / 3, rel=1e-3)

    def test_qr_rectangular(self):
        m, n = 4000, 2000
        assert qr_flops(n, m) == pytest.approx(2 * m * n**2 - 2 * n**3 / 3, rel=1e-12)

    def test_qr_wide_rejected(self):
        with pytest.raises(ValueError):
            qr_flops(100, 50)

    def test_lu_leading_term(self):
        n = 3000
        assert lu_flops(n) == pytest.approx(2 * n**3 / 3, rel=1e-3)

    def test_qr_twice_lu_twice_cholesky(self):
        n = 2000
        assert qr_flops(n) == pytest.approx(2 * lu_flops(n), rel=1e-2)
        assert lu_flops(n) == pytest.approx(2 * cholesky_flops(n), rel=1e-2)


class TestProgramFlopConsistency:
    """Tile-program flop totals approach the algorithmic count as nt grows."""

    def test_cholesky_program_total(self):
        from repro.algorithms import cholesky_program

        nt, nb = 20, 100
        prog = cholesky_program(nt, nb)
        assert prog.total_flops == pytest.approx(cholesky_flops(nt * nb), rel=0.06)

    def test_qr_program_total_exceeds_lapack_count(self):
        # Tile QR performs extra flops versus the LAPACK algorithm (TT
        # kernels); the total must be >= the algorithmic count but within ~2x.
        from repro.algorithms import qr_program

        nt, nb = 20, 100
        prog = qr_program(nt, nb)
        algo = qr_flops(nt * nb)
        assert algo <= prog.total_flops <= 2.0 * algo

    def test_lu_program_total(self):
        from repro.algorithms import lu_program

        nt, nb = 20, 100
        prog = lu_program(nt, nb)
        assert prog.total_flops == pytest.approx(lu_flops(nt * nb), rel=0.06)
