"""End-to-end fleet tests: real processes, real runs, real failures.

The fleet as users run it: ``repro fleet`` spawned as a subprocess, its
shard daemons spawned by *it*, and everything reached over real sockets.
These cover the acceptance path of the fleet feature: readiness
announcement, byte-identity with direct execution, fleet-wide
single-flight, shard death under load healing with zero failed requests,
and whole-fleet SIGTERM drain (exit 0).
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

import repro
from repro.runner.runner import run_cached
from repro.runner.spec import ProgramSpec, RunSpec, SchedulerSpec
from repro.service import RunRequest, ServiceClient, run_loadgen

from .test_service import make_spec, wait_until

pytestmark = pytest.mark.slow

READY_RE = re.compile(r"^listening on ([\w.\-]+):(\d+)$")


def start_fleet(tmp_path: Path, *extra: str):
    """Spawn ``repro fleet`` and parse the stdout readiness line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "fleet", "--port", "0",
         "--cache-dir", str(tmp_path / "cache"),
         "--state-file", str(tmp_path / "fleet.json"),
         "--log-dir", str(tmp_path / "logs"),
         "--workers", "2", *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, cwd=str(tmp_path),
    )
    line = proc.stdout.readline().strip()
    match = READY_RE.match(line)
    assert match, f"fleet never announced readiness on stdout: {line!r}"
    return proc, match.group(1), int(match.group(2))


def stop_fleet(proc: subprocess.Popen) -> int:
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            return proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            raise
    return proc.returncode


@pytest.fixture
def fleet3(tmp_path):
    proc, host, port = start_fleet(tmp_path, "--shards", "3")
    try:
        yield proc, host, port, tmp_path
    finally:
        try:
            stop_fleet(proc)
        finally:
            proc.stdout.close()


class TestFleetEndToEnd:
    def test_serve_announces_readiness_on_stdout(self, tmp_path):
        """``repro serve --port 0`` prints the machine-parseable line."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--no-cache", "--quiet"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, cwd=str(tmp_path),
        )
        try:
            line = proc.stdout.readline().strip()
            match = READY_RE.match(line)
            assert match, f"serve readiness line malformed: {line!r}"
            client = ServiceClient(match.group(1), int(match.group(2)))
            assert client.health()["ok"]
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
            proc.stdout.close()

    def test_results_match_direct_execution_and_drain_exits_zero(self, fleet3):
        proc, host, port, tmp_path = fleet3
        client = ServiceClient(host, port)

        # topology document
        state = json.loads((tmp_path / "fleet.json").read_text())
        assert state["schema"] == "repro.fleet/v1"
        assert len(state["shards"]) == 3
        assert state["router"]["port"] == port

        # a small grid through the router: byte-identical to direct runs
        specs = [make_spec(seed=s, nt=3) for s in range(6)]
        for spec in specs:
            doc = client.run(spec)
            assert doc["ok"], doc
            assert doc["trace"] == run_cached(spec, None).trace_dump()

        # the sweep spread across shards, every request accounted for
        stats = client.stats()
        routed = {sid: s["routed"] for sid, s in stats["per_shard"].items()}
        assert sum(routed.values()) == 6
        assert sum(1 for v in routed.values() if v > 0) >= 2
        assert stats["totals"]["failures"] == 0

        # identical spec again: served from the owning shard's cache
        repeat = client.run(specs[0])
        assert repeat["ok"] and repeat["cached"]
        assert client.stats()["totals"]["cache_hits"] >= 1

        assert stop_fleet(proc) == 0

    def test_identical_inflight_specs_coalesce_through_the_router(self, fleet3):
        proc, host, port, _ = fleet3
        client = ServiceClient(host, port)
        big = RunSpec(
            program=ProgramSpec("cholesky", 48, 64),  # ~1s of real work
            scheduler=SchedulerSpec("quark", n_workers=4),
            machine="uniform_4",
            seed=0,
        )
        with ThreadPoolExecutor(max_workers=4) as pool:
            first = pool.submit(client.run, big)
            wait_until(
                lambda: client.stats()["totals"]["in_flight"] >= 1, timeout_s=30
            )
            rest = [pool.submit(client.run, big) for _ in range(3)]
            docs = [first.result(timeout=120)] + [f.result(timeout=120) for f in rest]
        assert all(doc["ok"] for doc in docs)
        assert sum(doc["coalesced"] for doc in docs) == 3
        # one flight executed, on exactly one shard
        stats = client.stats()
        assert stats["totals"]["executed"] == 1
        assert stats["totals"]["coalesced"] == 3

    def test_shard_death_under_load_heals_with_zero_failures(self, fleet3):
        proc, host, port, tmp_path = fleet3
        state = json.loads((tmp_path / "fleet.json").read_text())
        victim_pid = state["shards"][0]["pid"]
        docs = [RunRequest(spec=make_spec(seed=s, nt=3)).to_document() for s in range(8)]

        killed = threading.Event()

        def kill_later() -> None:
            time.sleep(1.0)
            os.kill(victim_pid, signal.SIGKILL)
            killed.set()

        killer = threading.Thread(target=kill_later)
        killer.start()
        report = run_loadgen(
            host, port, docs, loop="closed", concurrency=4, duration_s=4.0,
            max_retries=8,
        )
        killer.join()
        assert killed.is_set()
        assert report["requests"] > 0
        assert report["failed"] == 0, report["status_counts"]
        # the router noticed: mark-down recorded, traffic rebalanced
        stats = ServiceClient(host, port).stats()
        assert stats["router"]["marked_down"] >= 1
        assert stats["per_shard"]["0"]["up"] is False
        # fleet still drains cleanly with a dead shard
        assert stop_fleet(proc) == 0
