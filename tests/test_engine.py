"""Correctness tests of the event-driven scheduler engine."""

import pytest

from repro.core.simbackend import SimulationBackend
from repro.core.task import Program
from repro.dag import build_dag, simple_dag
from repro.kernels.distributions import ConstantModel
from repro.kernels.timing import KernelModelSet
from repro.machine import MachineBackend, get_machine
from repro.schedulers import OmpSsScheduler, QuarkScheduler, StarPUScheduler


def _const_models(kernels=("K", "ROOT", "LEAF"), duration=1e-3):
    return KernelModelSet(
        models={k: ConstantModel(duration) for k in kernels}, family="constant"
    )


def _chain(n=6):
    prog = Program("chain", meta={"nb": 1})
    x = prog.registry.alloc("x", 64)
    for _ in range(n):
        prog.add_task("K", [x.rw()])
    return prog


def _fan(n=8):
    prog = Program("fan", meta={"nb": 1})
    src = prog.registry.alloc("src", 64)
    prog.add_task("ROOT", [src.write()])
    for i in range(n):
        y = prog.registry.alloc(f"y{i}", 64, key=(f"y{i}",))
        prog.add_task("LEAF", [src.read(), y.write()])
    return prog


def _run(prog, sched, models=None, seed=0):
    backend = SimulationBackend(models or _const_models())
    return sched.run(prog, backend, seed=seed)


ALL_SCHEDULERS = [
    lambda n: QuarkScheduler(n),
    lambda n: StarPUScheduler(n, policy="eager"),
    lambda n: StarPUScheduler(n, policy="prio"),
    lambda n: StarPUScheduler(n, policy="ws"),
    lambda n: StarPUScheduler(n, policy="dmda"),
    lambda n: OmpSsScheduler(n),
]


class TestBasicExecution:
    @pytest.mark.parametrize("factory", ALL_SCHEDULERS)
    def test_every_task_runs_exactly_once(self, factory):
        from repro.algorithms import qr_program

        prog = qr_program(4, 16)
        trace = _run(
            prog,
            factory(4),
            models=_const_models(("DGEQRT", "DORMQR", "DTSQRT", "DTSMQR")),
        )
        trace.validate()
        assert len(trace) == len(prog)
        assert sorted(e.task_id for e in trace.events) == list(range(len(prog)))

    @pytest.mark.parametrize("factory", ALL_SCHEDULERS)
    def test_dependences_respected(self, factory):
        from repro.algorithms import cholesky_program

        prog = cholesky_program(5, 16)
        trace = _run(
            prog,
            factory(4),
            models=_const_models(("DPOTRF", "DTRSM", "DSYRK", "DGEMM")),
        )
        ends = {e.task_id: e.end for e in trace.events}
        starts = {e.task_id: e.start for e in trace.events}
        for src, dst in simple_dag(build_dag(prog)).edges():
            assert starts[dst] >= ends[src] - 1e-12, f"edge {src}->{dst} violated"

    def test_empty_program(self):
        trace = _run(Program("empty"), QuarkScheduler(2))
        assert len(trace) == 0

    def test_single_task(self):
        prog = Program("one")
        x = prog.registry.alloc("x", 64)
        prog.add_task("K", [x.write()])
        trace = _run(prog, QuarkScheduler(2))
        assert len(trace) == 1

    def test_trace_meta(self):
        trace = _run(_chain(), QuarkScheduler(2), seed=7)
        assert trace.meta["scheduler"] == "quark"
        assert trace.meta["seed"] == 7
        assert trace.meta["n_workers"] == 2


class TestDeterminism:
    @pytest.mark.parametrize("factory", ALL_SCHEDULERS)
    def test_same_seed_same_trace(self, factory):
        from repro.algorithms import cholesky_program

        machine = get_machine("magny_cours_48")
        prog = cholesky_program(6, 32)
        t1 = factory(8).run(prog, MachineBackend(machine), seed=3)
        t2 = factory(8).run(prog, MachineBackend(machine), seed=3)
        assert t1.events == t2.events

    def test_different_seed_different_trace(self):
        from repro.algorithms import cholesky_program

        machine = get_machine("magny_cours_48")
        prog = cholesky_program(6, 32)
        t1 = QuarkScheduler(8).run(prog, MachineBackend(machine), seed=1)
        t2 = QuarkScheduler(8).run(prog, MachineBackend(machine), seed=2)
        assert t1.events != t2.events


class TestTimingSemantics:
    def test_chain_is_serial(self):
        dur, n = 1e-3, 6
        sched = QuarkScheduler(4, insert_cost=0.0, dispatch_overhead=0.0,
                               completion_cost=0.0)
        trace = _run(_chain(n), sched, models=_const_models(duration=dur))
        assert trace.makespan == pytest.approx(n * dur, rel=1e-9)

    def test_fan_parallelises(self):
        # 1 root then 8 leaves on 4 workers: 1 + ceil(8/4) rounds.
        sched = QuarkScheduler(4, insert_cost=0.0, dispatch_overhead=0.0,
                               completion_cost=0.0)
        trace = _run(_fan(8), sched, models=_const_models(duration=1e-3))
        assert trace.makespan == pytest.approx(3e-3, rel=1e-9)

    def test_dispatch_overhead_delays_start(self):
        sched = QuarkScheduler(2, insert_cost=0.0, dispatch_overhead=5e-4,
                               completion_cost=0.0)
        trace = _run(_chain(1), sched, models=_const_models(duration=1e-3))
        assert trace.events[0].start == pytest.approx(5e-4)

    def test_insert_cost_delays_first_task(self):
        sched = OmpSsScheduler(2, insert_cost=2e-3, dispatch_overhead=0.0)
        trace = _run(_chain(1), sched, models=_const_models(duration=1e-3))
        assert trace.events[0].start == pytest.approx(2e-3)

    def test_more_workers_never_slower_on_fan(self):
        spans = []
        for workers in (1, 2, 4, 8):
            sched = OmpSsScheduler(workers, insert_cost=0.0, dispatch_overhead=0.0)
            spans.append(_run(_fan(8), sched).makespan)
        assert spans == sorted(spans, reverse=True)


class TestWindow:
    def test_window_one_serialises(self):
        # With a one-task window, at most one task is in flight: the fan
        # executes serially despite 4 workers.
        sched = OmpSsScheduler(4, window=1, insert_cost=0.0, dispatch_overhead=0.0)
        trace = _run(_fan(8), sched, models=_const_models(duration=1e-3))
        assert trace.makespan == pytest.approx(9e-3, rel=1e-6)

    def test_small_window_slower_than_large(self):
        from repro.algorithms import cholesky_program

        prog = cholesky_program(6, 16)
        models = _const_models(("DPOTRF", "DTRSM", "DSYRK", "DGEMM"))
        small = _run(prog, QuarkScheduler(8, window=2), models=models).makespan
        large = _run(prog, QuarkScheduler(8, window=1000), models=models).makespan
        assert small > large

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            QuarkScheduler(2, window=0)

    def test_window_stalls_count_episodes(self):
        # 6 independent tasks through window=1: after each of the first 5
        # inserts the window is full with work remaining — exactly 5 stall
        # episodes (the 6th insert leaves nothing left to block).
        from repro.core.metrics import RunMetrics

        def _independent(n):
            prog = Program("indep", meta={"nb": 1})
            for i in range(n):
                y = prog.registry.alloc(f"y{i}", 64)
                prog.add_task("K", [y.write()])
            return prog

        metrics = RunMetrics()
        sched = OmpSsScheduler(4, window=1, insert_cost=0.0, dispatch_overhead=0.0)
        sched.run(_independent(6), SimulationBackend(_const_models()), metrics=metrics)
        assert metrics.window_stalls == 5

        # A window that never fills records zero episodes.
        metrics = RunMetrics()
        sched = OmpSsScheduler(4, window=100, insert_cost=0.0, dispatch_overhead=0.0)
        sched.run(_independent(6), SimulationBackend(_const_models()), metrics=metrics)
        assert metrics.window_stalls == 0

    def test_window_stall_polling_does_not_inflate(self):
        # Regression: repeated insertion polls during ONE full-window
        # episode must count once, not once per poll.
        from repro.core.metrics import RunMetrics
        from repro.schedulers.engine import Engine

        prog = _fan(4)
        sched = OmpSsScheduler(2, window=2, insert_cost=0.0, dispatch_overhead=0.0)
        metrics = RunMetrics()
        eng = Engine(sched, prog, SimulationBackend(_const_models()), metrics=metrics)

        # Simulate a full window mid-run and poll repeatedly.
        eng._in_flight = sched.window
        for _ in range(5):
            eng._maybe_start_insertion()
        assert metrics.window_stalls == 1

        # The window reopening ends the episode; refilling starts a new one.
        eng._in_flight = sched.window - 1
        eng._maybe_start_insertion()
        eng._in_flight = sched.window
        eng._maybe_start_insertion()
        assert metrics.window_stalls == 2


class TestMasterBehaviour:
    def test_quark_master_executes_after_insertion(self):
        # Insertion is instantaneous relative to task durations; the master
        # inserts everything then joins the workers.
        trace = _run(_fan(12), QuarkScheduler(4, insert_cost=1e-9))
        assert trace.tasks_per_worker()[0] > 0

    def test_quark_master_busy_inserting_runs_nothing(self):
        # Make insertion much longer than the tasks: worker 0 may only pick
        # up work once insertion has finished, so it runs at most the final
        # task — and nothing before the last insertion completes.
        sched = QuarkScheduler(4, insert_cost=5e-3, window=1000)
        trace = _run(_fan(8), sched, models=_const_models(duration=1e-4))
        assert trace.tasks_per_worker()[0] <= 1
        insertion_done = 9 * 5e-3
        for e in trace.worker_events(0):
            assert e.start >= insertion_done - 1e-9

    def test_dedicated_master_never_blocks_workers(self):
        # StarPU's submission thread is not a worker: all n workers execute.
        trace = _run(_fan(40), StarPUScheduler(4, policy="eager"))
        assert all(c > 0 for c in trace.tasks_per_worker())

    def test_completion_cost_displaces_master_tasks(self):
        from repro.algorithms import cholesky_program

        prog = cholesky_program(8, 16)
        models = _const_models(("DPOTRF", "DTRSM", "DSYRK", "DGEMM"))
        with_cost = _run(prog, QuarkScheduler(4, completion_cost=2e-4), models=models)
        without = _run(prog, QuarkScheduler(4, completion_cost=0.0), models=models)
        assert with_cost.tasks_per_worker()[0] < without.tasks_per_worker()[0]


class TestBackendContract:
    def test_invalid_duration_raises(self):
        class BadBackend:
            def reset(self, rng, n_workers):
                pass

            def duration(self, node, worker, now, active):
                return float("nan")

        with pytest.raises(ValueError, match="invalid duration"):
            QuarkScheduler(2).run(_chain(1), BadBackend())

    def test_negative_overheads_rejected(self):
        with pytest.raises(ValueError):
            QuarkScheduler(2, insert_cost=-1.0)
        with pytest.raises(ValueError):
            QuarkScheduler(2, dispatch_overhead=-1.0)

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ValueError):
            QuarkScheduler(0)
