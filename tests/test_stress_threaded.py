"""Stress and fault-injection tests for the threaded runtime robustness layer.

Covers the fault plan, the stall watchdog (detection, diagnostics, the
``recover`` policy, worker death), and the randomized stress sweep that
drives every race guard across many programs and worker counts.
"""

import time

import pytest

from repro.core.faults import FaultPlan, FaultState
from repro.core.metrics import RunMetrics
from repro.core.threaded import RACE_GUARDS, ThreadedRuntime
from repro.core.watchdog import (
    STALL_DIAGNOSTIC_SCHEMA,
    RuntimeStallError,
    StallPolicy,
)
from repro.experiments.stress import random_program, run_stress, stress_models
from repro.trace.verify import verify_trace

# Real-time fault rehearsal: every test here spins OS threads against
# wall-clock stall budgets, so the module rides in the slow lane.
pytestmark = pytest.mark.slow

#: Faults that deterministically strand a waiter: every TEQ wake-up is
#: dropped, and each task lingers between registering and waiting so later
#: tasks demonstrably queue up behind it.
LOST_NOTIFY = FaultPlan(drop_notify_rate=1.0, wait_delay=0.05)

#: A tight watchdog for tests: generous for these tiny runs, quick to fire.
FAST_STALL = StallPolicy(timeout_s=1.0, poll_s=0.05)


class TestFaultPlan:
    def test_defaults_inactive(self):
        assert not FaultPlan().active()

    def test_any_knob_activates(self):
        assert FaultPlan(dispatch_delay=1e-3).active()
        assert FaultPlan(wait_delay=1e-3).active()
        assert FaultPlan(drop_notify_rate=0.5).active()
        assert FaultPlan(kill_worker=0).active()

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(dispatch_delay=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(wait_delay=-1.0)

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_notify_rate=1.5)

    def test_kernel_lists_normalised_to_tuples(self):
        plan = FaultPlan(dispatch_delay=1e-3, delay_kernels=["KA", "KB"])
        assert plan.delay_kernels == ("KA", "KB")

    def test_state_counts_drops(self):
        state = FaultState(FaultPlan(drop_notify_rate=1.0))
        assert state.drop_notify() and state.drop_notify()
        assert state.notify_drops == 2

    def test_state_zero_rate_never_drops(self):
        state = FaultState(FaultPlan())
        assert not any(state.drop_notify() for _ in range(50))

    def test_kernel_filter_scopes_delays(self):
        state = FaultState(FaultPlan(dispatch_delay=2e-3, delay_kernels=("KC",)))
        assert state.dispatch_delay("KC") == 2e-3
        assert state.dispatch_delay("KA") == 0.0

    def test_should_die_counts_claims(self):
        state = FaultState(FaultPlan(kill_worker=1, kill_after_claims=2))
        assert not state.should_die(0)  # wrong worker
        assert not state.should_die(1)  # first claim survives
        assert state.should_die(1)  # second claim dies


class TestStallPolicy:
    def test_defaults_valid(self):
        policy = StallPolicy()
        assert policy.timeout_s > 0 and policy.on_stall == "raise"

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            StallPolicy(on_stall="retry")
        with pytest.raises(ValueError):
            StallPolicy(timeout_s=0.0)
        with pytest.raises(ValueError):
            StallPolicy(recover_attempts=0)

    def test_runtime_rejects_non_policy(self):
        with pytest.raises(TypeError):
            ThreadedRuntime(2, stall=5.0)


class TestWatchdogStall:
    def test_lost_notify_stall_detected_under_none_guard(self):
        # The acceptance scenario: with every TEQ notification dropped and
        # no race guard, a task stranded behind the front can never wake.
        # The watchdog must detect the stall within its real-time budget
        # and leave a structured diagnostic in the metrics.
        prog = random_program(8, seed=3)
        rt = ThreadedRuntime(2, guard="none", faults=LOST_NOTIFY, stall=FAST_STALL)
        metrics = RunMetrics()
        t0 = time.monotonic()
        with pytest.raises(RuntimeStallError, match="stalled"):
            rt.run(prog, models=stress_models(), metrics=metrics, seed=1)
        # budget 1s + watchdog poll slack; far below a hung-forever run
        assert time.monotonic() - t0 < 10.0

        diag = metrics.extra["stall"]
        assert diag["schema"] == STALL_DIAGNOSTIC_SCHEMA
        assert diag["guard"] == "none"
        assert diag["policy"]["on_stall"] == "raise"
        counters = diag["counters"]
        assert counters["n_tasks"] == 8
        assert counters["done"] < 8
        # The stranded tasks are visible: TEQ contents and per-worker state.
        assert diag["teq"], "stalled TEQ should hold the stranded tasks"
        assert all({"task_id", "end_time"} <= set(e) for e in diag["teq"])
        states = [w["state"] for w in diag["workers"]]
        assert "waiting_front" in states
        assert diag["faults"]["drop_notify_rate"] == 1.0
        assert metrics.teq_notify_drops > 0

    def test_stall_error_carries_diagnostic(self):
        prog = random_program(8, seed=3)
        rt = ThreadedRuntime(2, guard="none", faults=LOST_NOTIFY, stall=FAST_STALL)
        with pytest.raises(RuntimeStallError) as excinfo:
            rt.run(prog, models=stress_models(), seed=1)
        assert excinfo.value.diagnostic["schema"] == STALL_DIAGNOSTIC_SCHEMA

    def test_recover_policy_heals_lost_notifies(self):
        # Same fault, but the watchdog may force-notify: the run completes,
        # the trace verifies, and the healed episodes are counted.  Whether
        # a waiter actually blocks on a dropped wake-up is a timing race —
        # ``wait_for`` re-checks the front before sleeping, so a task that
        # arrives after its turn never needs the notify — hence retry until
        # one run demonstrably exercises the recovery path.
        prog = random_program(8, seed=3)
        for _attempt in range(5):
            rt = ThreadedRuntime(
                2,
                guard="none",
                faults=LOST_NOTIFY,
                stall=StallPolicy(
                    timeout_s=0.5,
                    on_stall="recover",
                    poll_s=0.05,
                    recover_attempts=100,
                    recover_backoff_s=0.05,
                ),
            )
            metrics = RunMetrics()
            trace = rt.run(prog, models=stress_models(), metrics=metrics, seed=1)
            verify_trace(prog, trace)
            assert len(trace) == 8
            assert "stall" not in metrics.extra
            if metrics.stall_recoveries >= 1:
                break
        else:
            pytest.fail("no run hit the watchdog recovery path in 5 attempts")

    def test_recover_exhaustion_degenerates_to_raise(self):
        # Worker death is not a lost wake-up: forced notifies cannot heal
        # it, so the recover policy must eventually raise with the attempts
        # it made on record.
        prog = random_program(8, seed=3)
        rt = ThreadedRuntime(
            2,
            guard="quiesce",
            faults=FaultPlan(kill_worker=0, kill_after_claims=1),
            stall=StallPolicy(
                timeout_s=0.5, on_stall="recover", poll_s=0.05,
                recover_attempts=2, recover_backoff_s=0.05,
            ),
        )
        with pytest.raises(RuntimeStallError) as excinfo:
            rt.run(prog, models=stress_models(), seed=1)
        assert excinfo.value.diagnostic["recover_attempts_made"] == 2

    def test_worker_death_detected_with_diagnostic(self):
        prog = random_program(8, seed=3)
        rt = ThreadedRuntime(
            2,
            guard="quiesce",
            faults=FaultPlan(kill_worker=0, kill_after_claims=1),
            stall=FAST_STALL,
        )
        metrics = RunMetrics()
        with pytest.raises(RuntimeStallError):
            rt.run(prog, models=stress_models(), metrics=metrics, seed=1)
        states = [w["state"] for w in metrics.extra["stall"]["workers"]]
        assert "dead" in states

    def test_worker_crash_propagates_instead_of_hanging(self):
        # A crashing task body used to kill its thread silently and hang
        # the join; now the first error aborts the run and re-raises.
        prog = random_program(6, seed=4)

        class BoomModels:
            def duration(self, kernel, rng):
                raise ZeroDivisionError("injected model failure")

        rt = ThreadedRuntime(2, guard="quiesce", stall=FAST_STALL)
        with pytest.raises(RuntimeError, match="worker .* crashed"):
            rt.run(prog, models=BoomModels(), seed=0)

    def test_watchdog_silent_on_healthy_run(self):
        prog = random_program(10, seed=5)
        metrics = RunMetrics()
        rt = ThreadedRuntime(2, guard="quiesce", stall=FAST_STALL)
        trace = rt.run(prog, models=stress_models(), metrics=metrics, seed=2)
        verify_trace(prog, trace)
        assert metrics.stall_recoveries == 0
        assert "stall" not in metrics.extra

    def test_watchdog_disabled_with_none(self):
        prog = random_program(6, seed=6)
        rt = ThreadedRuntime(2, guard="quiesce", stall=None)
        trace = rt.run(prog, models=stress_models(), seed=0)
        assert len(trace) == 6


class TestLegacyFaultKwargs:
    def test_dispatch_delay_folds_into_plan(self):
        rt = ThreadedRuntime(2, dispatch_delay=3e-3, delay_kernels=("KC",))
        assert rt.faults == FaultPlan(dispatch_delay=3e-3, delay_kernels=("KC",))
        assert rt.dispatch_delay == 3e-3
        assert rt.delay_kernels == ("KC",)

    def test_both_spellings_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            ThreadedRuntime(2, dispatch_delay=1e-3, faults=FaultPlan())


class TestStressSweep:
    def test_sweep_all_guards_200_combos(self):
        # The acceptance sweep: 25 random programs x 4 guards x 2 worker
        # counts = 200 combinations, every trace verified.
        report = run_stress(
            n_programs=25,
            n_tasks=12,
            guards=RACE_GUARDS,
            worker_counts=(2, 3),
            base_seed=100,
            stall=StallPolicy(timeout_s=20.0, poll_s=0.05),
        )
        assert len(report.outcomes) == 200
        assert report.all_ok, report.table()
        assert {o.guard for o in report.outcomes} == set(RACE_GUARDS)
        assert {o.n_workers for o in report.outcomes} == {2, 3}

    def test_sweep_reports_failures_without_raising(self):
        # A sweep over a deterministically-stalling configuration records
        # the failures instead of aborting the harness.
        report = run_stress(
            n_programs=1,
            n_tasks=8,
            guards=("none",),
            worker_counts=(2,),
            base_seed=3,
            faults=LOST_NOTIFY,
            stall=FAST_STALL,
        )
        assert not report.all_ok
        assert report.failures[0].error.startswith("RuntimeStallError")

    def test_sweep_rejects_unknown_guard(self):
        with pytest.raises(ValueError, match="unknown race guard"):
            run_stress(n_programs=1, guards=("mutex",))

    def test_random_program_deterministic(self):
        a = random_program(10, seed=9)
        b = random_program(10, seed=9)
        assert [t.describe() for t in a] == [t.describe() for t in b]
        c = random_program(10, seed=10)
        assert [t.describe() for t in a] != [t.describe() for t in c]


class TestStressCli:
    def test_cli_smoke_exits_zero(self, capsys):
        from repro.cli import main

        code = main(
            ["stress", "--programs", "2", "--tasks", "6", "--workers", "2",
             "--stall-timeout", "10"]
        )
        assert code == 0
        assert "stress sweep" in capsys.readouterr().out

    def test_cli_reports_failure_exit_code(self, capsys):
        from repro.cli import main

        code = main(
            ["stress", "--programs", "1", "--tasks", "8", "--workers", "2",
             "--guards", "none", "--base-seed", "3",
             "--drop-notify-rate", "1.0", "--wait-delay", "0.05",
             "--stall-timeout", "1"]
        )
        assert code == 1
        assert "failing combinations" in capsys.readouterr().err
