"""Tests for the benchmark subsystem and the batched duration sampler.

The sampling tests enforce the contract the whole optimization pass rests
on: for a fixed seed, the batched sampler's draw sequence is *bit-identical*
to per-call sampling, and therefore optimized `simulate()` traces are
byte-identical to the reference path.  The golden-digest test extends that
guarantee across commits: the digests in ``tests/data/preopt_trace_digests.json``
were captured from the pre-optimization simulator.
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.algorithms import cholesky_program, qr_program
from repro.bench import (
    BENCH_SCHEMA,
    BenchReport,
    BenchResult,
    compare_reports,
    default_suite,
    run_benchmark,
    run_suite,
    synthetic_models,
)
from repro.core.simbackend import SimulationBackend
from repro.core.simulator import run_real, simulate
from repro.kernels.distributions import (
    ConstantModel,
    GammaModel,
    LognormalModel,
    NormalModel,
)
from repro.kernels.timing import BatchedNormalSampler, DirectSampler, KernelModelSet
from repro.schedulers import make_scheduler
from repro.trace.compare import compare_traces
from repro.trace.textio import dumps_trace

DATA = Path(__file__).parent / "data"


def _normal_models() -> KernelModelSet:
    return KernelModelSet(
        models={
            "A": LognormalModel(mu_log=-9.0, sigma_log=0.1),
            "B": NormalModel(mu=2e-4, sigma=1e-5),
            "C": ConstantModel(value=5e-5),
            "D": LognormalModel(mu_log=-8.0, sigma_log=0.2),
        },
        family="mixed",
    )


class TestBatchedSampler:
    def test_batchable_classification(self):
        assert _normal_models().batchable
        with_gamma = KernelModelSet(
            models={
                "A": NormalModel(mu=1e-4, sigma=1e-5),
                "G": GammaModel(shape=4.0, scale=1e-5),
            },
            family="mixed",
        )
        assert not with_gamma.batchable
        assert isinstance(with_gamma.make_sampler(np.random.default_rng(0)), DirectSampler)
        assert isinstance(_normal_models().make_sampler(np.random.default_rng(0)), BatchedNormalSampler)

    def test_batched_flag_forces_direct(self):
        sampler = _normal_models().make_sampler(np.random.default_rng(0), batched=False)
        assert isinstance(sampler, DirectSampler)

    @pytest.mark.parametrize("seed", [0, 1, 1234, 999])
    def test_draw_sequences_bit_identical(self, seed):
        """Property: batched and direct sampling yield the same floats.

        The kernel sequence interleaves all four model kinds (including the
        rng-free ConstantModel) and crosses several refill boundaries.
        """
        models = _normal_models()
        rng = np.random.default_rng(seed)
        kernels = [["A", "B", "C", "D"][int(rng.integers(4))] for _ in range(2000)]

        direct = models.make_sampler(np.random.default_rng(seed), batched=False)
        batched = models.make_sampler(np.random.default_rng(seed))
        assert isinstance(batched, BatchedNormalSampler)
        for kernel in kernels:
            assert direct.draw(kernel) == batched.draw(kernel)

    def test_unknown_kernel_raises(self):
        sampler = _normal_models().make_sampler(np.random.default_rng(0))
        with pytest.raises(KeyError, match="no timing model"):
            sampler.draw("NOPE")

    def test_small_block_refills(self):
        models = KernelModelSet(
            models={"A": LognormalModel(mu_log=-9.0, sigma_log=0.1)}, family="lognormal"
        )
        batched = BatchedNormalSampler(models.models, np.random.default_rng(7), block=3)
        direct = models.make_sampler(np.random.default_rng(7), batched=False)
        for _ in range(20):
            assert batched.draw("A") == direct.draw("A")

    def test_block_must_be_positive(self):
        with pytest.raises(ValueError):
            BatchedNormalSampler({}, np.random.default_rng(0), block=0)


class TestTraceEquivalence:
    @pytest.mark.parametrize("scheduler", ["quark", "starpu", "ompss"])
    def test_batched_vs_direct_traces_identical(self, scheduler):
        program = cholesky_program(8, 200)
        models = synthetic_models(program)
        traces = []
        for batched in (True, False):
            sched = make_scheduler(scheduler, 16)
            backend = SimulationBackend(models, warmup_penalty=1e-3, batched=batched)
            trace = sched.run(program, backend, seed=1234, trace_meta={"mode": "simulated"})
            traces.append(trace)
        assert dumps_trace(traces[0]) == dumps_trace(traces[1])
        assert compare_traces(traces[0], traces[1]).abs_error_percent == 0.0

    def test_golden_digests_from_pre_optimization_commit(self):
        """Optimized runs reproduce pre-optimization traces byte-for-byte."""
        golden = json.loads((DATA / "preopt_trace_digests.json").read_text())
        digests = golden["digests"]
        for algorithm, gen in (("cholesky", cholesky_program), ("qr", qr_program)):
            program = gen(8, 200)
            models = synthetic_models(program)
            for scheduler in ("quark", "starpu", "ompss"):
                sim_trace = simulate(
                    program,
                    make_scheduler(scheduler, 16),
                    models,
                    seed=1234,
                    warmup_penalty=1e-3,
                )
                got = hashlib.sha256(dumps_trace(sim_trace).encode()).hexdigest()
                assert got == digests[f"sim/{algorithm}/{scheduler}/nt8"], (
                    f"simulated trace drifted: {algorithm}/{scheduler}"
                )
                real_trace = run_real(
                    program, make_scheduler(scheduler, 16), "magny_cours_48", seed=77
                )
                got = hashlib.sha256(dumps_trace(real_trace).encode()).hexdigest()
                assert got == digests[f"real/{algorithm}/{scheduler}/nt8"], (
                    f"real-mode trace drifted: {algorithm}/{scheduler}"
                )


class TestBenchHarness:
    def test_run_benchmark_records_best_and_mean(self):
        calls = []

        def fn():
            calls.append(1)

        result = run_benchmark("t/x", fn, group="micro", ops=10, unit="ops/s", repeats=3, warmup=1)
        assert len(calls) == 4  # warmup + repeats
        assert result.repeats == 3
        assert len(result.all_wall_s) == 3
        assert result.wall_s == min(result.all_wall_s)
        assert result.ops_per_s == pytest.approx(10 / result.wall_s)

    def test_ops_override_from_fn(self):
        result = run_benchmark("t/y", lambda: 42, group="micro", ops=1, unit="events/s", repeats=2)
        assert result.ops == 42

    def test_report_roundtrip_and_schema(self, tmp_path):
        report = BenchReport(label="test")
        report.add(
            BenchResult(
                name="a", group="micro", ops=5, unit="ops/s", repeats=1,
                wall_s=0.5, ops_per_s=10.0, mean_wall_s=0.5, all_wall_s=[0.5],
            )
        )
        path = report.write_json(tmp_path / "b.json")
        loaded = BenchReport.read_json(path)
        assert loaded.to_dict()["schema"] == BENCH_SCHEMA
        assert loaded.by_name()["a"].ops_per_s == 10.0

        doc = json.loads(Path(path).read_text())
        doc["schema"] = "something/else"
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="schema"):
            BenchReport.read_json(bad)

    def test_default_suite_composition(self):
        quick = default_suite(quick=True)
        full = default_suite()
        names_quick = {s.name for s in quick}
        names_full = {s.name for s in full}
        assert "micro/teq-push-pop" in names_quick
        assert "macro/simulate/cholesky-nt28/quark" in names_full
        assert names_quick < names_full

    def test_run_suite_filter_and_no_match(self):
        specs = default_suite(quick=True)
        with pytest.raises(ValueError, match="no benchmarks match"):
            run_suite(specs, only=["nothing/*"])

        for spec in specs:
            spec.repeats = 1
        report = run_suite(specs, only=["micro/hazard*"], label="t")
        assert [r.name for r in report.results] == ["micro/hazard-tracking"]


class TestBenchGate:
    def _report(self, throughput):
        report = BenchReport(label="x")
        for name, ops_per_s in throughput.items():
            report.add(
                BenchResult(
                    name=name, group="macro", ops=1, unit="tasks/s", repeats=1,
                    wall_s=1.0, ops_per_s=ops_per_s, mean_wall_s=1.0, all_wall_s=[1.0],
                )
            )
        return report

    def test_regression_detected(self):
        baseline = self._report({"a": 100.0, "b": 100.0})
        fresh = self._report({"a": 95.0, "b": 60.0})  # b lost 40% > 30%
        gate = compare_reports(baseline, fresh, max_regression=0.30)
        assert not gate.ok
        assert [d.name for d in gate.regressions] == ["b"]
        assert "REGRESSED" in gate.table()

    def test_within_threshold_passes(self):
        gate = compare_reports(
            self._report({"a": 100.0}), self._report({"a": 75.0}), max_regression=0.30
        )
        assert gate.ok

    def test_new_benchmarks_never_fail(self):
        gate = compare_reports(
            self._report({"a": 100.0}),
            self._report({"a": 100.0, "new": 1.0}),
            max_regression=0.30,
        )
        assert gate.ok
        statuses = {d.name: d.status for d in gate.deltas}
        assert statuses == {"a": "compared", "new": "new"}

    def test_truncated_fresh_report_fails_gate(self):
        # A fresh report missing a baseline suite (crashed/truncated bench
        # run) must fail the gate by name, not silently pass.
        gate = compare_reports(
            self._report({"a": 100.0, "b": 100.0}),
            self._report({"a": 100.0}),
            max_regression=0.30,
        )
        assert not gate.ok
        assert [d.name for d in gate.missing] == ["b"]
        assert not gate.regressions
        table = gate.table()
        assert "MISSING" in table
        assert "b" in table.splitlines()[-1]

    def test_only_scopes_missing_check(self):
        # Baseline suites outside the --only patterns are intentionally
        # unselected, not missing.
        baseline = self._report({"micro/x": 100.0, "macro/y": 100.0})
        fresh = self._report({"micro/x": 100.0})
        gate = compare_reports(baseline, fresh, max_regression=0.30, only=["micro/*"])
        assert gate.ok
        assert [d.name for d in gate.deltas] == ["micro/x"]

    def test_threshold_validated(self):
        report = self._report({"a": 1.0})
        with pytest.raises(ValueError):
            compare_reports(report, report, max_regression=0.0)
        with pytest.raises(ValueError):
            compare_reports(report, report, max_regression=1.0)


class TestBenchCli:
    def test_no_subcommand_prints_help_and_exits_2(self, capsys):
        from repro.cli import main

        assert main([]) == 2
        assert "usage: repro" in capsys.readouterr().err

    def test_version_flag(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_bench_writes_schema_tagged_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "BENCH_test.json"
        code = main(
            ["bench", "--quick", "--only", "micro/hazard*", "--repeats", "1",
             "--out", str(out)]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["results"][0]["name"] == "micro/hazard-tracking"
        assert "env" in doc

    def test_bench_gate_fails_on_artificial_slowdown(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fresh.json"
        assert main(
            ["bench", "--quick", "--only", "micro/hazard*", "--repeats", "1",
             "--out", str(out)]
        ) == 0
        doc = json.loads(out.read_text())
        for r in doc["results"]:
            r["ops_per_s"] *= 2.0  # baseline pretends to be 2x faster
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(doc))
        code = main(
            ["bench", "--quick", "--only", "micro/hazard*", "--repeats", "1",
             "--compare", str(doctored)]
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_bench_unknown_filter_exits_2(self, capsys):
        from repro.cli import main

        assert main(["bench", "--quick", "--only", "zzz/*"]) == 2


class TestSweepTransforms:
    def test_kinds_and_parameters(self):
        from repro.kernels.timing import SWEEP_CONST, SWEEP_LOGNORMAL, SWEEP_NORMAL

        transforms = _normal_models().sweep_transforms()
        assert transforms["A"] == (SWEEP_LOGNORMAL, -9.0, 0.1)
        assert transforms["B"] == (SWEEP_NORMAL, 2e-4, 1e-5)
        kind, a, b = transforms["C"]
        assert (kind, a, b) == (SWEEP_CONST, 5e-5, 0.0)

    def test_transforms_match_from_standard_normal_bitwise(self):
        import math

        from repro.kernels.timing import SWEEP_CONST, SWEEP_LOGNORMAL, SWEEP_NORMAL

        models = _normal_models()
        transforms = models.sweep_transforms()
        zs = np.random.default_rng(9).standard_normal(256)
        for kernel, model in models.models.items():
            kind, a, b = transforms[kernel]
            for z in zs:
                z = float(z)
                if kind == SWEEP_CONST:
                    expected = model.sample(np.random.default_rng(0))
                    assert a == expected
                    continue
                d = a + b * z
                if kind == SWEEP_LOGNORMAL:
                    d = math.exp(d)
                d = max(d, 1e-9)
                assert d == model.from_standard_normal(z), (kernel, z)

    def test_unsupported_model_disqualifies(self):
        with_gamma = KernelModelSet(
            models={"A": GammaModel(shape=2.0, scale=1e-4)}, family="gamma"
        )
        assert with_gamma.sweep_transforms() is None

    def test_subclass_disqualifies(self):
        class Tweaked(LognormalModel):
            def from_standard_normal(self, z: float) -> float:
                return 1.0

        subclassed = KernelModelSet(
            models={"A": Tweaked(mu_log=-9.0, sigma_log=0.1)}, family="lognormal"
        )
        assert subclassed.sweep_transforms() is None


class TestBenchTrend:
    def _report(self, throughput, label="run"):
        report = BenchReport(label=label)
        for name, ops_per_s in throughput.items():
            report.add(
                BenchResult(
                    name=name, group="micro", ops=1, unit="events/s", repeats=1,
                    wall_s=1.0, ops_per_s=ops_per_s, mean_wall_s=1.0, all_wall_s=[1.0],
                )
            )
        return report

    def test_append_and_load_round_trip(self, tmp_path):
        from repro.bench import TREND_SCHEMA, append_history, load_history

        history = tmp_path / "hist.jsonl"
        entry = append_history(
            self._report({"micro/x": 100.0}), history, meta={"commit": "abc"}
        )
        append_history(self._report({"micro/x": 120.0}), history)
        assert entry["schema"] == TREND_SCHEMA
        assert entry["meta"] == {"commit": "abc"}
        loaded = load_history(history)
        assert len(loaded) == 2
        assert loaded[0]["results"]["micro/x"]["ops_per_s"] == 100.0
        assert loaded[1]["results"]["micro/x"]["ops_per_s"] == 120.0

    def test_load_skips_corrupt_and_foreign_lines(self, tmp_path):
        from repro.bench import append_history, load_history

        history = tmp_path / "hist.jsonl"
        append_history(self._report({"micro/x": 100.0}), history)
        with history.open("a") as fh:
            fh.write("{truncated\n")
            fh.write('{"schema": "something.else/v9"}\n')
            fh.write("[1, 2, 3]\n")
        append_history(self._report({"micro/x": 110.0}), history)
        loaded = load_history(history)
        assert [e["results"]["micro/x"]["ops_per_s"] for e in loaded] == [100.0, 110.0]

    def test_missing_history_is_empty(self, tmp_path):
        from repro.bench import load_history

        assert load_history(tmp_path / "absent.jsonl") == []

    def test_trend_table_deltas(self, tmp_path):
        from repro.bench import append_history, load_history, trend_table

        history = tmp_path / "hist.jsonl"
        append_history(self._report({"micro/x": 100.0, "micro/gone": 50.0}), history)
        fresh = self._report({"micro/x": 150.0, "micro/new": 10.0})
        table = trend_table(load_history(history), fresh)
        lines = {line.split(" | ")[0].strip("| "): line for line in table.splitlines()}
        assert "+50.0%" in lines["micro/x"]
        assert "| new |" in lines["micro/new"]
        assert "| gone |" in lines["micro/gone"]

    def test_trend_table_with_empty_history(self):
        from repro.bench import trend_table

        table = trend_table([], self._report({"micro/x": 100.0}))
        assert "| micro/x | - | 100 events/s | new |" in table

    def test_bench_trend_cli(self, tmp_path, capsys):
        from repro.cli import main

        report_path = tmp_path / "BENCH.json"
        self._report({"micro/x": 100.0}).write_json(report_path)
        history = tmp_path / "hist.jsonl"
        summary = tmp_path / "summary.md"
        assert main(
            ["bench-trend", "--report", str(report_path),
             "--history", str(history), "--meta", "commit=abc"]
        ) == 0
        out = capsys.readouterr().out
        assert "| micro/x |" in out
        assert "1 run(s)" in out
        # Second run writes the table to the summary file instead.
        assert main(
            ["bench-trend", "--report", str(report_path),
             "--history", str(history), "--summary", str(summary)]
        ) == 0
        assert "+0.0%" in summary.read_text()
        assert main(
            ["bench-trend", "--report", str(tmp_path / "nope.json"),
             "--history", str(history)]
        ) == 2
        assert main(
            ["bench-trend", "--report", str(report_path),
             "--history", str(history), "--meta", "notakv"]
        ) == 2
