"""Tests for trace events, persistence, SVG rendering, and comparison."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import (
    Trace,
    TraceEvent,
    activity_profile,
    activity_rmse,
    compare_traces,
    completion_order_similarity,
    dumps_trace,
    kernel_time_drift,
    load_trace,
    loads_trace,
    makespan_error,
    render_svg,
    save_trace,
    write_comparison_svg,
    write_svg,
)


def _trace(events, n_workers=2, meta=None):
    tr = Trace(n_workers, meta=meta)
    for i, (w, start, end, kernel) in enumerate(events):
        tr.record(w, i, kernel, start, end)
    return tr


class TestTraceEvent:
    def test_duration(self):
        assert TraceEvent(1.0, 3.5, 0, 0, "K").duration == 2.5

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent(2.0, 1.0, 0, 0, "K")

    def test_negative_worker_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent(0.0, 1.0, -1, 0, "K")

    def test_chronological_ordering(self):
        a = TraceEvent(0.0, 1.0, 0, 0, "K")
        b = TraceEvent(0.5, 1.0, 0, 1, "K")
        assert a < b


class TestTrace:
    def test_makespan(self):
        tr = _trace([(0, 1.0, 2.0, "A"), (1, 0.5, 3.0, "B")])
        assert tr.makespan == pytest.approx(2.5)
        assert tr.start_time == 0.5

    def test_empty_trace(self):
        tr = Trace(2)
        assert tr.makespan == 0.0
        assert tr.utilization() == 0.0
        with pytest.raises(ValueError):
            tr.gflops(1.0)

    def test_worker_range_checked(self):
        tr = Trace(2)
        with pytest.raises(ValueError):
            tr.record(2, 0, "K", 0.0, 1.0)

    def test_utilization(self):
        tr = _trace([(0, 0.0, 1.0, "A"), (1, 0.0, 1.0, "A")])
        assert tr.utilization() == pytest.approx(1.0)

    def test_busy_time_per_worker(self):
        tr = _trace([(0, 0.0, 1.0, "A"), (0, 1.0, 3.0, "A"), (1, 0.0, 0.5, "B")])
        assert tr.busy_time(0) == pytest.approx(3.0)
        assert tr.busy_time() == pytest.approx(3.5)

    def test_kernel_durations_grouped(self):
        tr = _trace([(0, 0.0, 1.0, "A"), (1, 0.0, 2.0, "B"), (0, 1.0, 2.5, "A")])
        durs = tr.kernel_durations()
        assert durs["A"] == [1.0, 1.5]
        assert durs["B"] == [2.0]

    def test_tasks_per_worker(self):
        tr = _trace([(0, 0.0, 1.0, "A"), (0, 1.0, 2.0, "A"), (1, 0.0, 1.0, "B")])
        assert tr.tasks_per_worker() == [2, 1]

    def test_gflops(self):
        tr = _trace([(0, 0.0, 2.0, "A")])
        assert tr.gflops(4e9) == pytest.approx(2.0)

    def test_completion_order(self):
        tr = _trace([(0, 0.0, 3.0, "A"), (1, 0.0, 1.0, "B"), (1, 1.0, 2.0, "C")])
        assert tr.completion_order() == [1, 2, 0]

    def test_validate_accepts_back_to_back(self):
        _trace([(0, 0.0, 1.0, "A"), (0, 1.0, 2.0, "A")]).validate()

    def test_validate_rejects_overlap(self):
        tr = _trace([(0, 0.0, 2.0, "A"), (0, 1.0, 3.0, "A")])
        with pytest.raises(ValueError, match="overlapping"):
            tr.validate()

    def test_validate_rejects_duplicate_task(self):
        tr = Trace(2)
        tr.record(0, 7, "K", 0.0, 1.0)
        tr.record(1, 7, "K", 0.0, 1.0)
        with pytest.raises(ValueError, match="twice"):
            tr.validate()


class TestTextIO:
    def test_roundtrip(self):
        tr = _trace([(0, 0.0, 1.0, "A"), (1, 0.5, 2.0, "B")], meta={"seed": 3})
        back = loads_trace(dumps_trace(tr))
        assert back.n_workers == tr.n_workers
        assert back.meta == {"seed": 3}
        assert sorted(back.events) == sorted(tr.events)

    def test_file_roundtrip(self, tmp_path):
        tr = _trace([(0, 0.0, 1.0, "A")])
        path = save_trace(tr, tmp_path / "t" / "trace.txt")
        back = load_trace(path)
        assert back.events == tr.events

    def test_labels_with_spaces_survive(self):
        tr = Trace(1)
        tr.record(0, 0, "K", 0.0, 1.0, label="gemm k=1 i=2 j=3")
        back = loads_trace(dumps_trace(tr))
        assert back.events[0].label == "gemm k=1 i=2 j=3"

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            loads_trace("0 0 K 0.0 1.0\n")

    def test_malformed_record_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            loads_trace('# {"n_workers": 1, "meta": {}}\n0 0 K 0.0 1.0\n')

    def test_width_roundtrips(self):
        tr = Trace(4)
        tr.record(1, 0, "K", 0.0, 1.0, width=3)
        back = loads_trace(dumps_trace(tr))
        assert back.events[0].width == 3

    def test_times_roundtrip_exactly(self):
        tr = Trace(1)
        tr.record(0, 0, "K", 0.1234567890123456, 0.9876543210987654)
        back = loads_trace(dumps_trace(tr))
        assert back.events[0].start == 0.1234567890123456
        assert back.events[0].end == 0.9876543210987654

    @given(
        events=st.lists(
            st.tuples(
                st.integers(0, 2),
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, events):
        tr = Trace(3)
        for i, (w, a, b) in enumerate(events):
            lo, hi = min(a, b), max(a, b)
            tr.record(w, i, "K", lo, hi)
        back = loads_trace(dumps_trace(tr))
        assert sorted(back.events) == sorted(tr.events)

    def test_kernel_with_whitespace_rejected(self):
        # A space in the kernel shifts every later field on reload; the
        # save must refuse instead of producing a wrong-but-parseable file.
        tr = Trace(1)
        tr.record(0, 0, "DGEMM v2", 0.0, 1.0)
        with pytest.raises(ValueError, match="kernel name"):
            dumps_trace(tr)
        tr = Trace(1)
        tr.record(0, 0, "K\tB", 0.0, 1.0)
        with pytest.raises(ValueError, match="kernel name"):
            dumps_trace(tr)

    def test_empty_kernel_rejected(self):
        tr = Trace(1)
        tr.record(0, 0, "", 0.0, 1.0)
        with pytest.raises(ValueError, match="kernel name"):
            dumps_trace(tr)

    def test_label_with_newline_rejected(self):
        tr = Trace(1)
        tr.record(0, 0, "K", 0.0, 1.0, label="line1\nline2")
        with pytest.raises(ValueError, match="newlines"):
            dumps_trace(tr)

    def test_label_with_edge_whitespace_rejected(self):
        # Leading/trailing whitespace would be eaten by the split on load.
        tr = Trace(1)
        tr.record(0, 0, "K", 0.0, 1.0, label=" padded ")
        with pytest.raises(ValueError, match="whitespace"):
            dumps_trace(tr)

    @given(
        kernel=st.text(
            alphabet=st.characters(
                codec="ascii", categories=("L", "N", "P"), exclude_characters="#"
            ),
            min_size=1,
            max_size=8,
        ),
        label=st.text(
            alphabet=st.characters(
                codec="ascii", categories=("L", "N", "P", "Zs"), exclude_characters="#"
            ),
            max_size=16,
        ).map(str.strip),
    )
    @settings(max_examples=50, deadline=None)
    def test_text_fields_roundtrip_property(self, kernel, label):
        # Every kernel/label pair the validator accepts must round-trip
        # byte-for-byte; the rest must raise at save time, never corrupt.
        tr = Trace(1)
        tr.record(0, 0, kernel, 0.0, 1.0, label=label)
        try:
            text = dumps_trace(tr)
        except ValueError:
            assert kernel.split() != [kernel] or label != label.strip()
            return
        back = loads_trace(text)
        assert back.events[0].kernel == kernel
        assert back.events[0].label == label


class TestSvg:
    def test_svg_well_formed(self):
        tr = _trace([(0, 0.0, 1.0, "DGEMM"), (1, 0.0, 2.0, "DTSMQR")])
        svg = render_svg(tr, title="test")
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<rect") >= 3  # background + 2 tasks

    def test_svg_one_lane_per_worker(self):
        tr = _trace([(0, 0.0, 1.0, "A")], n_workers=4)
        svg = render_svg(tr)
        assert svg.count("core ") == 4

    def test_svg_escapes_labels(self):
        tr = Trace(1)
        tr.record(0, 0, "K", 0.0, 1.0, label="<&>")
        assert "&lt;&amp;&gt;" in render_svg(tr)

    def test_write_svg(self, tmp_path):
        tr = _trace([(0, 0.0, 1.0, "A")])
        path = write_svg(tr, tmp_path / "x" / "trace.svg")
        assert path.exists()

    def test_comparison_svg_shares_scale(self, tmp_path):
        real = _trace([(0, 0.0, 2.0, "A")])
        sim = _trace([(0, 0.0, 1.0, "A")])
        path = write_comparison_svg(real, sim, tmp_path / "cmp.svg")
        text = path.read_text()
        assert text.count("<g") == 2
        assert "2s" in text  # both axes span the longer makespan

    def test_fixed_time_span(self):
        tr = _trace([(0, 0.0, 1.0, "A")])
        svg = render_svg(tr, time_span=10.0)
        assert "10s" in svg


class TestCompare:
    def test_makespan_error_signed(self):
        real = _trace([(0, 0.0, 2.0, "A")])
        sim = _trace([(0, 0.0, 1.5, "A")])
        assert makespan_error(real, sim) == pytest.approx(-0.25)

    def test_makespan_error_zero_real_rejected(self):
        with pytest.raises(ValueError):
            makespan_error(Trace(1), Trace(1))

    def test_identical_traces_perfect_similarity(self):
        tr = _trace([(0, 0.0, 1.0, "A"), (1, 0.0, 2.0, "B"), (0, 1.0, 3.0, "C")])
        assert completion_order_similarity(tr, tr) == pytest.approx(1.0)

    def test_reversed_orders_anticorrelated(self):
        a = _trace([(0, 0.0, 1.0, "A"), (1, 0.0, 2.0, "B")])
        b = _trace([(0, 0.0, 2.0, "A"), (1, 0.0, 1.0, "B")])
        assert completion_order_similarity(a, b) == pytest.approx(-1.0)

    def test_activity_profile_constant_load(self):
        tr = _trace([(0, 0.0, 10.0, "A"), (1, 0.0, 10.0, "B")])
        profile = activity_profile(tr, n_bins=10)
        assert np.allclose(profile, 2.0)

    def test_activity_profile_sums_to_busy_time(self):
        tr = _trace([(0, 0.0, 3.0, "A"), (1, 1.0, 2.0, "B"), (0, 4.0, 6.0, "C")])
        n_bins = 60
        profile = activity_profile(tr, n_bins)
        bin_width = tr.makespan / n_bins
        assert profile.sum() * bin_width == pytest.approx(tr.busy_time())

    def test_activity_rmse_zero_for_identical(self):
        tr = _trace([(0, 0.0, 1.0, "A"), (1, 0.5, 2.0, "B")])
        assert activity_rmse(tr, tr) == pytest.approx(0.0)

    def test_kernel_time_drift(self):
        real = _trace([(0, 0.0, 1.0, "A")])
        sim = _trace([(0, 0.0, 1.1, "A")])
        drift = kernel_time_drift(real, sim)
        assert drift["A"] == pytest.approx(0.1)

    def test_compare_traces_report(self):
        real = _trace([(0, 0.0, 2.0, "A"), (1, 0.0, 1.0, "B")])
        sim = _trace([(0, 0.0, 2.1, "A"), (1, 0.0, 0.9, "B")])
        cmp_ = compare_traces(real, sim)
        assert cmp_.abs_error_percent == pytest.approx(5.0)
        text = cmp_.report()
        assert "makespan" in text and "Kendall" in text
