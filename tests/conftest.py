"""Shared fixtures for the test suite.

Expensive artifacts (calibrated model sets, machine traces) are session
scoped; everything else is rebuilt per test for isolation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import cholesky_program, qr_program
from repro.kernels.distributions import ConstantModel
from repro.kernels.timing import KernelModelSet
from repro.machine import calibrate, get_machine
from repro.schedulers import QuarkScheduler


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def quiet_machine():
    """Deterministic 4-core machine: no jitter, spikes, warm-up, or cache/
    contention effects."""
    return get_machine("uniform_4")


@pytest.fixture
def noisy_machine():
    """The 48-core Magny-Cours model with all noise sources active."""
    return get_machine("magny_cours_48")


@pytest.fixture
def small_cholesky():
    return cholesky_program(4, 32)


@pytest.fixture
def small_qr():
    return qr_program(3, 32)


@pytest.fixture
def constant_models():
    """Fixed 1 ms per kernel, for analytically checkable schedules."""
    kernels = (
        "DPOTRF",
        "DTRSM",
        "DSYRK",
        "DGEMM",
        "DGEQRT",
        "DORMQR",
        "DTSQRT",
        "DTSMQR",
        "DGETRF_NOPIV",
        "DTRSM_LLN",
        "DTRSM_RUN",
        "DGEMM_NN",
    )
    return KernelModelSet(
        models={k: ConstantModel(1e-3) for k in kernels}, family="constant"
    )


@pytest.fixture(scope="session")
def calibrated_qr_models():
    """Lognormal models from a QR calibration run on the big machine."""
    machine = get_machine("magny_cours_48")
    models, _ = calibrate(
        qr_program(10, 180), QuarkScheduler(48), machine, family="lognormal", seed=0
    )
    return models
