"""Tests for the high-level simulate/run_real/validate API and calibration."""

import numpy as np
import pytest

from repro.algorithms import cholesky_program, qr_program
from repro.core.simbackend import SimulationBackend
from repro.core.simulator import run_real, simulate, validate
from repro.kernels.distributions import ConstantModel
from repro.kernels.timing import KernelModelSet
from repro.machine import (
    MachineBackend,
    calibrate,
    calibration_run,
    collect_samples,
    get_machine,
)
from repro.schedulers import QuarkScheduler


class TestSimulationBackend:
    def test_requires_reset(self):
        backend = SimulationBackend(KernelModelSet(models={"K": ConstantModel(1.0)}))
        from repro.core.task import DataRegistry, TaskSpec
        from repro.schedulers.base import TaskNode

        spec = TaskSpec("K", (DataRegistry().alloc("x", 8).rw(),))
        spec.task_id = 0
        with pytest.raises(RuntimeError, match="reset"):
            backend.duration(TaskNode(spec), 0, 0.0, 1)

    def test_warmup_penalty_first_task_per_worker(self):
        backend = SimulationBackend(
            KernelModelSet(models={"K": ConstantModel(1e-3)}), warmup_penalty=5e-3
        )
        backend.reset(np.random.default_rng(0), 2)
        from repro.core.task import DataRegistry, TaskSpec
        from repro.schedulers.base import TaskNode

        spec = TaskSpec("K", (DataRegistry().alloc("x", 8).rw(),))
        spec.task_id = 0
        node = TaskNode(spec)
        assert backend.duration(node, 0, 0.0, 1) == pytest.approx(6e-3)
        assert backend.duration(node, 0, 0.0, 1) == pytest.approx(1e-3)
        assert backend.duration(node, 1, 0.0, 1) == pytest.approx(6e-3)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            SimulationBackend(KernelModelSet(), warmup_penalty=-1.0)


class TestCalibration:
    def test_collect_samples_groups_by_kernel(self, noisy_machine):
        prog = cholesky_program(5, 64)
        trace = calibration_run(prog, QuarkScheduler(8), noisy_machine, seed=0)
        samples = collect_samples(trace, drop_first_per_worker=False)
        counts = prog.kernel_counts()
        assert {k: len(v) for k, v in samples.items()} == counts

    def test_drop_first_per_worker(self, noisy_machine):
        prog = cholesky_program(5, 64)
        trace = calibration_run(prog, QuarkScheduler(8), noisy_machine, seed=0)
        kept = collect_samples(trace, drop_first_per_worker=True)
        total_kept = sum(len(v) for v in kept.values())
        busy_workers = sum(1 for c in trace.tasks_per_worker() if c > 0)
        assert total_kept == len(prog) - busy_workers

    def test_drop_first_removes_warmup_outliers(self, noisy_machine):
        # With the warm-up penalty active, each worker's first kernel is much
        # longer; dropping them should lower the DGEMM mean.
        prog = cholesky_program(8, 64)
        trace = calibration_run(prog, QuarkScheduler(8), noisy_machine, seed=0)
        with_first = collect_samples(trace, drop_first_per_worker=False)
        without = collect_samples(trace, drop_first_per_worker=True)
        assert np.mean(without["DGEMM"]) <= np.mean(with_first["DGEMM"])

    def test_calibrate_returns_models_for_all_kernels(self, noisy_machine):
        models, trace = calibrate(
            cholesky_program(5, 64), QuarkScheduler(8), noisy_machine, seed=0
        )
        assert set(models.kernels()) == {"DPOTRF", "DTRSM", "DSYRK", "DGEMM"}
        assert len(trace) == len(cholesky_program(5, 64))

    def test_calibrate_best_family(self, noisy_machine):
        models, _ = calibrate(
            cholesky_program(5, 64),
            QuarkScheduler(8),
            noisy_machine,
            family="best",
            seed=0,
        )
        assert models.family == "best"

    def test_empty_program_rejected(self, noisy_machine):
        from repro.core.task import Program

        with pytest.raises(ValueError, match="no samples"):
            calibrate(Program("empty"), QuarkScheduler(2), noisy_machine)


class TestValidateApi:
    def test_run_real_accepts_machine_name_object_backend(self):
        prog = cholesky_program(3, 32)
        for machine in ("uniform_4", get_machine("uniform_4"), MachineBackend("uniform_4")):
            trace = run_real(cholesky_program(3, 32), QuarkScheduler(4), machine)
            assert trace.meta["mode"] == "real"
            assert len(trace) == len(prog)

    def test_simulate_mode_meta(self, constant_models):
        trace = simulate(cholesky_program(3, 32), QuarkScheduler(4), constant_models)
        assert trace.meta["mode"] == "simulated"

    def test_validate_small_error_on_quiet_machine(self):
        """On a noise-free machine with saturating calibration the simulator
        should predict the makespan almost exactly."""
        machine = get_machine("uniform_4")
        sched = QuarkScheduler(4)
        models, _ = calibrate(cholesky_program(8, 64), sched, machine, family="normal")
        result = validate(
            cholesky_program(8, 64), QuarkScheduler(4), machine, models
        )
        assert result.error_percent < 2.0
        assert result.comparison.order_similarity > 0.9

    def test_validate_reports_gflops(self, noisy_machine, calibrated_qr_models):
        result = validate(
            qr_program(8, 180),
            QuarkScheduler(48),
            noisy_machine,
            calibrated_qr_models,
            warmup_penalty=noisy_machine.warmup_penalty,
        )
        assert result.gflops_real > 0
        assert result.gflops_sim > 0
        text = result.report()
        assert "GFLOP/s" in text and "error" in text

    def test_validate_accuracy_on_noisy_machine(self, noisy_machine, calibrated_qr_models):
        """The headline claim at calibration scale: error within a few %."""
        result = validate(
            qr_program(10, 180),
            QuarkScheduler(48),
            noisy_machine,
            calibrated_qr_models,
            warmup_penalty=noisy_machine.warmup_penalty,
        )
        assert result.error_percent < 10.0

    def test_simulated_trace_has_same_task_set(self, noisy_machine, calibrated_qr_models):
        result = validate(
            qr_program(6, 180),
            QuarkScheduler(48),
            noisy_machine,
            calibrated_qr_models,
        )
        real_ids = sorted(e.task_id for e in result.real.events)
        sim_ids = sorted(e.task_id for e in result.simulated.events)
        assert real_ids == sim_ids
